package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/histogram"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/xrand"
)

// The readlatency workload compares steady-state read-acquisition latency
// through a reader handle (RLockH: cached-slot CAS, no identity derivation,
// no hashing), the anonymous path (RLock: self.ID() + Hash(L, Self) per
// acquisition), and the optimistic seqlock section (ReadAttempt..
// ReadValidate on the rwl.WrapOptimistic wrapper: zero shared-memory
// writes, pessimistic handle fallback when validation fails) on the same
// BRAVO lock. It is the experiment behind both read-path layers: the
// handle must at least match the anonymous fast path at p50, and the seq
// section must stay flat across the goroutine axis at 0% writes while
// collapsing no worse than the handle path when writers join.

// SeqReadBenchAttempts is the optimistic attempt budget the seq column
// uses before taking the pessimistic fallback — the engine's default.
const SeqReadBenchAttempts = 3

// DefaultReadLatencyWriteRatios is the write-ratio axis of the sweep: pure
// readers (the zero-CAS flatness claim) and 10% writes (the graceful-
// collapse claim).
var DefaultReadLatencyWriteRatios = []float64{0, 0.10}

// HandleLatencyResult is one (lock, goroutines, write-ratio) comparison
// point.
type HandleLatencyResult struct {
	Lock       string `json:"lock"`
	Goroutines int    `json:"goroutines"`
	// WriteRatio is the fraction of operations (uniformly per worker) that
	// take the write lock instead of performing the measured read.
	WriteRatio float64 `json:"write_ratio"`
	// Handle* are the RLockH measurements, Plain* the RLock ones, Seq* the
	// optimistic seqlock sections (a failed-validation read is measured to
	// the end of its pessimistic fallback acquisition, so the seq column
	// pays for its own misses). The percentile values are log2-histogram
	// upper bounds in nanoseconds.
	HandleP50Ns     int64   `json:"handle_p50_ns"`
	HandleP99Ns     int64   `json:"handle_p99_ns"`
	PlainP50Ns      int64   `json:"plain_p50_ns"`
	PlainP99Ns      int64   `json:"plain_p99_ns"`
	SeqP50Ns        int64   `json:"seq_p50_ns"`
	SeqP99Ns        int64   `json:"seq_p99_ns"`
	HandleOpsPerSec float64 `json:"handle_ops_per_sec"`
	PlainOpsPerSec  float64 `json:"plain_ops_per_sec"`
	SeqOpsPerSec    float64 `json:"seq_ops_per_sec"`
	HandleMeanNs    float64 `json:"handle_mean_ns"`
	PlainMeanNs     float64 `json:"plain_mean_ns"`
	SeqMeanNs       float64 `json:"seq_mean_ns"`
	// SeqFallbackRate is fallbacks / seq reads: the fraction of optimistic
	// reads that exhausted their attempts and took the pessimistic lock.
	SeqFallbackRate  float64 `json:"seq_fallback_rate"`
	HandleP50LEPlain bool    `json:"handle_p50_le_plain"`
	SeqP50LEHandle   bool    `json:"seq_p50_le_handle"`
}

// HandleLatencyReport is the top-level BENCH_readlatency.json document.
type HandleLatencyReport struct {
	Benchmark  string                `json:"benchmark"`
	Meta       RunMeta               `json:"meta"`
	IntervalMS int64                 `json:"interval_ms"`
	Runs       int                   `json:"runs"`
	Results    []HandleLatencyResult `json:"results"`
	// Guard, when present, compares this (guarded) run's handle read path
	// against a baseline report measured on a build without the
	// unbalanced-unlock guard.
	Guard *GuardOverhead `json:"guard_overhead,omitempty"`
}

// GuardOverhead quantifies the cost of the always-on unbalanced-unlock
// guard: the generation tag a reader handle carries in its SlotToken and
// the unlock-side verification it pays for. Rows are matched by (lock,
// goroutines, write_ratio); the acceptance bit requires every matched
// row's guarded handle p50 to stay within 2% of the unguarded baseline.
type GuardOverhead struct {
	BaselineCommit string `json:"baseline_commit"`
	RowsCompared   int    `json:"rows_compared"`
	// MaxHandleP50Ratio is the worst guarded/unguarded handle p50 ratio
	// across matched rows; the p50s are log2-histogram bucket bounds, so
	// any regression that crosses a bucket shows as a ratio >= 2.
	MaxHandleP50Ratio float64 `json:"max_handle_p50_ratio"`
	// GeoMeanHandleMeanRatio is the geometric mean of the per-row
	// guarded/unguarded handle mean-latency ratios — the sub-bucket view
	// of the same comparison, informational rather than gating.
	GeoMeanHandleMeanRatio float64 `json:"geomean_handle_mean_ratio"`
	HandleP50Within2Pct    bool    `json:"handle_p50_within_2pct"`
}

// CompareGuardOverhead matches current's rows against baseline's and
// distils the guard-cost comparison. It errors when the reports share no
// (lock, goroutines, write_ratio) rows, so a mismatched baseline file
// cannot silently produce a vacuous pass.
func CompareGuardOverhead(baseline, current HandleLatencyReport) (GuardOverhead, error) {
	type rowKey struct {
		lock string
		g    int
		wr   float64
	}
	base := make(map[rowKey]HandleLatencyResult, len(baseline.Results))
	for _, r := range baseline.Results {
		base[rowKey{r.Lock, r.Goroutines, r.WriteRatio}] = r
	}
	g := GuardOverhead{BaselineCommit: baseline.Meta.Commit, HandleP50Within2Pct: true}
	var logSum float64
	var means int
	for _, cur := range current.Results {
		b, ok := base[rowKey{cur.Lock, cur.Goroutines, cur.WriteRatio}]
		if !ok || b.HandleP50Ns <= 0 || cur.HandleP50Ns <= 0 {
			continue
		}
		g.RowsCompared++
		ratio := float64(cur.HandleP50Ns) / float64(b.HandleP50Ns)
		if ratio > g.MaxHandleP50Ratio {
			g.MaxHandleP50Ratio = ratio
		}
		if float64(cur.HandleP50Ns) > float64(b.HandleP50Ns)*1.02 {
			g.HandleP50Within2Pct = false
		}
		if b.HandleMeanNs > 0 && cur.HandleMeanNs > 0 {
			logSum += math.Log(cur.HandleMeanNs / b.HandleMeanNs)
			means++
		}
	}
	if g.RowsCompared == 0 {
		return g, fmt.Errorf("bench: guard baseline shares no (lock, goroutines, write_ratio) rows with this sweep")
	}
	if means > 0 {
		g.GeoMeanHandleMeanRatio = math.Exp(logSum / float64(means))
	}
	return g, nil
}

// WriteJSON renders the report as indented JSON.
func (r HandleLatencyReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// NewHandleLatencyReport stamps the environment fields of a report.
func NewHandleLatencyReport(cfg Config, results []HandleLatencyResult) HandleLatencyReport {
	return HandleLatencyReport{
		Benchmark:  "readlatency",
		Meta:       NewRunMeta(),
		IntervalMS: cfg.Interval.Milliseconds(),
		Runs:       cfg.Runs,
		Results:    results,
	}
}

// handleLatencyLock builds a fresh BRAVO lock for lockName ("bravo-" +
// substrate) on a private table, so comparison points do not interfere
// through the shared table.
func handleLatencyLock(lockName string) (rwl.HandleRWLock, error) {
	under, ok := strings.CutPrefix(lockName, "bravo-")
	if !ok {
		return nil, fmt.Errorf("bench: readlatency needs a bravo- lock, got %q", lockName)
	}
	if under == "go" { // registry alias asymmetry: bravo-go wraps go-rw
		under = "go-rw"
	}
	mkUnder, ok := rwl.Lookup(under)
	if !ok {
		return nil, fmt.Errorf("bench: unknown substrate %q (known: %v)", under, rwl.Names())
	}
	return core.New(mkUnder(), core.WithTable(core.NewTable(core.DefaultTableSize))), nil
}

// readMode selects which read path a run measures.
type readMode int

const (
	plainMode readMode = iota
	handleMode
	seqMode
)

// ReadLatencyCompare measures one (lock, goroutines, writeRatio) point:
// cfg.Runs interleaved triples of plain/handle/seq intervals on fresh
// locks, with per-run histograms merged.
func ReadLatencyCompare(lockName string, goroutines int, writeRatio float64, cfg Config) (HandleLatencyResult, error) {
	res := HandleLatencyResult{Lock: lockName, Goroutines: goroutines, WriteRatio: writeRatio}
	handleHist, plainHist, seqHist := &histogram.Histogram{}, &histogram.Histogram{}, &histogram.Histogram{}
	var handleOps, plainOps, seqOps uint64
	var seqFallbacks atomic.Uint64
	for run := 0; run < cfg.Runs; run++ {
		// Interleave the modes so scheduling and frequency drift spread
		// evenly across all three.
		l, err := handleLatencyLock(lockName)
		if err != nil {
			return res, err
		}
		plainOps += readLatencyRun(l, goroutines, cfg, plainHist, plainMode, writeRatio, &seqFallbacks)
		if l, err = handleLatencyLock(lockName); err != nil {
			return res, err
		}
		handleOps += readLatencyRun(l, goroutines, cfg, handleHist, handleMode, writeRatio, &seqFallbacks)
		if l, err = handleLatencyLock(lockName); err != nil {
			return res, err
		}
		// The seq column measures the wrapper the KV engine actually
		// deploys: write sections bump the counter, reads attempt the
		// zero-CAS section and fall back through the handle path.
		wrapped := rwl.WrapOptimistic(l).(rwl.HandleRWLock)
		seqOps += readLatencyRun(wrapped, goroutines, cfg, seqHist, seqMode, writeRatio, &seqFallbacks)
	}
	seconds := cfg.Interval.Seconds() * float64(cfg.Runs)
	res.HandleOpsPerSec = float64(handleOps) / seconds
	res.PlainOpsPerSec = float64(plainOps) / seconds
	res.SeqOpsPerSec = float64(seqOps) / seconds
	res.HandleP50Ns = handleHist.Percentile(50)
	res.HandleP99Ns = handleHist.Percentile(99)
	res.PlainP50Ns = plainHist.Percentile(50)
	res.PlainP99Ns = plainHist.Percentile(99)
	res.SeqP50Ns = seqHist.Percentile(50)
	res.SeqP99Ns = seqHist.Percentile(99)
	res.HandleMeanNs = handleHist.Mean()
	res.PlainMeanNs = plainHist.Mean()
	res.SeqMeanNs = seqHist.Mean()
	if seqOps > 0 {
		res.SeqFallbackRate = float64(seqFallbacks.Load()) / float64(seqOps)
	}
	res.HandleP50LEPlain = res.HandleP50Ns <= res.PlainP50Ns
	res.SeqP50LEHandle = res.SeqP50Ns <= res.HandleP50Ns
	return res, nil
}

// readLatencyRun drives goroutines workers for one interval, recording
// per-read-acquisition latency into hist, and returns total read ops.
// writeRatio is each worker's per-op probability of taking the write lock
// instead (writes are not measured — they exist to collide with the reads).
// For seqMode, l must be the rwl.WrapOptimistic wrapper and fallbacks
// accumulates reads that exhausted SeqReadBenchAttempts.
func readLatencyRun(l rwl.HandleRWLock, goroutines int, cfg Config, hist *histogram.Histogram, mode readMode, writeRatio float64, fallbacks *atomic.Uint64) uint64 {
	var mu sync.Mutex
	var sl rwl.SeqRWLock
	if mode == seqMode {
		sl = l.(rwl.SeqRWLock)
	}
	// Per-op write draw against a 2^20 grid: cheap, and exact enough for
	// the 0 / 0.10 axis.
	wcut := uint64(writeRatio * (1 << 20))
	return RunWorkers(goroutines, cfg.Interval, func(id int, stop *atomic.Bool) uint64 {
		local := &histogram.Histogram{}
		var h *rwl.Reader
		if mode != plainMode {
			h = rwl.NewReader() // seqMode uses the handle for its fallback
		}
		rng := xrand.NewXorShift64(uint64(id)*0x9E3779B97F4A7C15 + 0x5EC5EC)
		// Warm-up: enable bias (first slow read) and settle the slot (or,
		// for the anonymous path, the identity) before measuring.
		for i := 0; i < 1000; i++ {
			switch mode {
			case handleMode, seqMode:
				tok := l.RLockH(h)
				l.RUnlockH(h, tok)
			default:
				tok := l.RLock()
				l.RUnlock(tok)
			}
		}
		var ops, falls uint64
		for !stop.Load() {
			if wcut != 0 && rng.Next()&(1<<20-1) < wcut {
				l.Lock()
				l.Unlock()
				continue
			}
			switch mode {
			case plainMode:
				start := clock.Nanos()
				tok := l.RLock()
				local.Record(clock.Nanos() - start)
				l.RUnlock(tok)
			case handleMode:
				start := clock.Nanos()
				tok := l.RLockH(h)
				local.Record(clock.Nanos() - start)
				l.RUnlockH(h, tok)
			case seqMode:
				start := clock.Nanos()
				validated := false
				for a := 0; a < SeqReadBenchAttempts; a++ {
					s0, even := sl.ReadAttempt()
					if !even {
						continue
					}
					// The section body is empty on purpose: the engine's
					// copy cost belongs to the KV benches; this column
					// isolates the acquisition-protocol cost, like the
					// other two.
					if sl.ReadValidate(s0) {
						validated = true
						break
					}
				}
				if validated {
					local.Record(clock.Nanos() - start)
				} else {
					falls++
					tok := l.RLockH(h)
					local.Record(clock.Nanos() - start)
					l.RUnlockH(h, tok)
				}
			}
			ops++
		}
		if falls > 0 {
			fallbacks.Add(falls)
		}
		mu.Lock()
		hist.Merge(local)
		mu.Unlock()
		return ops
	})
}

// ReadLatencySweep runs the full lock × goroutines × write-ratio grid.
func ReadLatencySweep(locks []string, goroutines []int, writeRatios []float64, cfg Config) ([]HandleLatencyResult, error) {
	if len(writeRatios) == 0 {
		writeRatios = DefaultReadLatencyWriteRatios
	}
	var out []HandleLatencyResult
	for _, lock := range locks {
		for _, wr := range writeRatios {
			for _, g := range goroutines {
				r, err := ReadLatencyCompare(lock, g, wr, cfg)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// WriteHandleLatencyTable renders sweep results as the human-readable
// companion of the JSON report.
func WriteHandleLatencyTable(w io.Writer, results []HandleLatencyResult) {
	const format = "%-14s %6s %5s %14s %14s %11s %10s %10s %8s %8s\n"
	fmt.Fprintf(w, format, "lock", "gors", "wr", "handle-p50(ns)", "plain-p50(ns)", "seq-p50(ns)", "handle-p99", "seq-p99", "seq-fb", "s<=h@50")
	for _, r := range results {
		fmt.Fprintf(w, format, r.Lock,
			fmt.Sprintf("%d", r.Goroutines),
			fmt.Sprintf("%.2f", r.WriteRatio),
			fmt.Sprintf("%d", r.HandleP50Ns), fmt.Sprintf("%d", r.PlainP50Ns),
			fmt.Sprintf("%d", r.SeqP50Ns),
			fmt.Sprintf("%d", r.HandleP99Ns), fmt.Sprintf("%d", r.SeqP99Ns),
			fmt.Sprintf("%.4f", r.SeqFallbackRate),
			fmt.Sprintf("%v", r.SeqP50LEHandle))
	}
}
