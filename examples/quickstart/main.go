// Quickstart: wrap a compact reader-writer lock with BRAVO and watch the
// reader fast path engage — the §3 transformation (publish into the
// visible-readers table, recheck RBias, pass the slot via the token) on
// the smallest possible program.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	bravo "github.com/bravolock/bravo"
)

func main() {
	// BRAVO-BA: the paper's flagship composition. Stats are attached so we
	// can watch which paths reads take (leave them off in production).
	stats := &bravo.Stats{}
	l := bravo.New(bravo.NewBA(), bravo.WithStats(stats))

	// A shared map guarded by the lock.
	data := map[string]int{"reads": 0}

	// One writer updates occasionally...
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			l.Lock()
			data["version"] = i
			l.Unlock()
		}
	}()

	// ...while readers dominate. The first read of each quiet period goes
	// through the underlying lock and enables reader bias; subsequent reads
	// publish themselves in the shared visible readers table with one CAS
	// and never touch the underlying lock's reader counter.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25000; i++ {
				tok := l.RLock() // token carries the fast-path slot
				_ = data["version"]
				l.RUnlock(tok)
			}
		}()
	}
	wg.Wait()

	snap := stats.Snapshot()
	fmt.Println("BRAVO-BA read/write breakdown:")
	fmt.Printf("  reads total:     %d\n", snap.Reads())
	fmt.Printf("  fast-path reads: %d (%.1f%%)\n", snap.FastRead, 100*snap.FastFraction())
	fmt.Printf("  slow (disabled): %d\n", snap.SlowDisabled)
	fmt.Printf("  slow (collide):  %d\n", snap.SlowCollision)
	fmt.Printf("  slow (raced):    %d\n", snap.SlowRaced)
	fmt.Printf("  writes:          %d (%d revoked reader bias)\n", snap.Writes(), snap.WriteRevoke)
	fmt.Printf("  biased now:      %v\n", l.Biased())
}
