package core

import (
	"github.com/bravolock/bravo/internal/bias"
)

// DefaultInhibitN is the paper's N (§3): bias re-enabling is inhibited for
// N times the measured revocation latency, bounding the worst-case writer
// slow-down near 1/(N+1).
const DefaultInhibitN = bias.DefaultInhibitN

// Policy decides when a slow-path reader may (re-)enable reader bias.
type Policy = bias.Policy

// InhibitPolicy is the paper's production policy (see bias.InhibitPolicy).
type InhibitPolicy = bias.InhibitPolicy

// NewInhibitPolicy returns the paper's policy with multiplier n
// (n <= 0 selects DefaultInhibitN).
func NewInhibitPolicy(n int64) *InhibitPolicy { return bias.NewInhibitPolicy(n) }

// BernoulliPolicy is the early-prototype policy (§3), kept for the ablation.
type BernoulliPolicy = bias.BernoulliPolicy

// AlwaysPolicy re-enables bias at every opportunity.
type AlwaysPolicy = bias.AlwaysPolicy

// NeverPolicy never enables bias, reducing BRAVO-A to A plus one branch.
type NeverPolicy = bias.NeverPolicy
