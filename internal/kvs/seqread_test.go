package kvs

import (
	"fmt"
	"testing"

	"github.com/bravolock/bravo/internal/rwl"
)

// installSeqReadHook installs fn in the copy→validate window of the
// optimistic read path and removes it when the test ends. Tests that use
// the hook must not run in parallel (the hook is package state).
func installSeqReadHook(t *testing.T, fn func(key uint64)) {
	t.Helper()
	seqReadHook.Store(&fn)
	t.Cleanup(func() { seqReadHook.Store(nil) })
}

// TestSeqReadCollisionBoundedRetriesThenFallback forces a writer into every
// optimistic read's copy→validate window and asserts the contract the
// tentpole promises: bounded retries (exactly the attempt budget), then a
// clean fallback to the BRAVO read-lock path that returns the latest value —
// for anonymous readers and rwl.Reader handles both.
func TestSeqReadCollisionBoundedRetriesThenFallback(t *testing.T) {
	const key = 42
	for _, mode := range []string{"anonymous", "handle"} {
		t.Run(mode, func(t *testing.T) {
			s, _, _ := newBravoSharded(t, 4)
			s.Put(key, []byte("v0"))
			gen := 0
			installSeqReadHook(t, func(k uint64) {
				if k != key {
					return
				}
				// A full write lands mid-read, every time: no attempt can
				// ever validate.
				gen++
				s.Put(key, []byte(fmt.Sprintf("v%d", gen)))
			})
			var v []byte
			var ok bool
			if mode == "handle" {
				v, ok = s.GetH(rwl.NewReader(), key)
			} else {
				v, ok = s.Get(key)
			}
			if !ok || string(v) != fmt.Sprintf("v%d", gen) {
				t.Fatalf("fallback read = %q, %v; want the latest value v%d", v, ok, gen)
			}
			st := s.Stats().Total()
			if st.SeqFallbacks != 1 {
				t.Fatalf("SeqFallbacks = %d, want 1", st.SeqFallbacks)
			}
			if st.SeqReads != 0 {
				t.Fatalf("SeqReads = %d, want 0: no attempt could validate", st.SeqReads)
			}
			if want := uint64(s.SeqReadAttempts()); st.SeqRetries != want {
				t.Fatalf("SeqRetries = %d, want the attempt budget %d", st.SeqRetries, want)
			}
			if st.Gets != 1 || st.GetHits != 1 {
				t.Fatalf("Gets/GetHits = %d/%d, want 1/1 (one logical read)", st.Gets, st.GetHits)
			}
			if gen != s.SeqReadAttempts() {
				t.Fatalf("writer fired %d times, want once per attempt (%d)", gen, s.SeqReadAttempts())
			}
		})
	}
}

// TestSeqReadSingleCollisionRetriesThenValidates lets exactly one writer
// interfere: the read must retry once and then serve optimistically, never
// falling back.
func TestSeqReadSingleCollisionRetriesThenValidates(t *testing.T) {
	const key = 7
	s, _, _ := newBravoSharded(t, 2)
	s.Put(key, []byte("old"))
	fired := false
	installSeqReadHook(t, func(k uint64) {
		if k != key || fired {
			return
		}
		fired = true
		s.Put(key, []byte("new"))
	})
	v, ok := s.Get(key)
	if !ok || string(v) != "new" {
		t.Fatalf("read after one collision = %q, %v; want \"new\"", v, ok)
	}
	st := s.Stats().Total()
	if st.SeqReads != 1 || st.SeqRetries != 1 || st.SeqFallbacks != 0 {
		t.Fatalf("seq reads/retries/fallbacks = %d/%d/%d, want 1/1/0",
			st.SeqReads, st.SeqRetries, st.SeqFallbacks)
	}
}

// TestSeqReadCollisionMultiGet drives the same forced-collision contract
// through the batched read path, plain and handle. One shard, so all keys
// share one seq bracket and the hook's write tears every group copy.
func TestSeqReadCollisionMultiGet(t *testing.T) {
	s, _, _ := newBravoSharded(t, 1)
	keys := []uint64{1, 2, 3, 4, 5, 6}
	for _, k := range keys {
		s.Put(k, []byte{byte(k)})
	}
	gen := byte(0)
	installSeqReadHook(t, func(k uint64) {
		gen++
		s.Put(keys[0], []byte{100 + gen}) // tear every optimistic group copy
	})
	for _, mode := range []string{"plain", "handle"} {
		var vals [][]byte
		if mode == "handle" {
			vals = s.MultiGetH(rwl.NewReader(), keys)
		} else {
			vals = s.MultiGet(keys)
		}
		for i, k := range keys[1:] {
			if vals[i+1] == nil || vals[i+1][0] != byte(k) {
				t.Fatalf("%s MultiGet[%d] = %v, want [%d]", mode, i+1, vals[i+1], k)
			}
		}
		if vals[0] == nil || vals[0][0] != 100+gen {
			t.Fatalf("%s MultiGet[0] = %v, want the latest torn-key value %d", mode, vals[0], 100+gen)
		}
	}
	st := s.Stats().Total()
	if st.SeqFallbacks == 0 || st.SeqReads != 0 {
		t.Fatalf("seq fallbacks/reads = %d/%d: every group should have fallen back",
			st.SeqFallbacks, st.SeqReads)
	}
}

// TestSeqReadValidatedMissIsAuthoritative checks that an optimistic miss
// does not fall back: a validated empty probe is exactly as authoritative
// as a locked lookup.
func TestSeqReadValidatedMissIsAuthoritative(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.Put(1, []byte("x"))
	if _, ok := s.Get(999); ok {
		t.Fatal("absent key hit")
	}
	st := s.Stats().Total()
	if st.SeqReads != 1 || st.SeqFallbacks != 0 {
		t.Fatalf("seq reads/fallbacks = %d/%d, want 1/0", st.SeqReads, st.SeqFallbacks)
	}
	if st.Gets != 1 || st.GetHits != 0 {
		t.Fatalf("gets/hits = %d/%d, want 1/0", st.Gets, st.GetHits)
	}
}

// TestSeqReadObservesTTLExpiry checks lazy expiry on the optimistic path:
// a validated copy of an expired entry is reported as a miss and counted,
// exactly like the locked path.
func TestSeqReadObservesTTLExpiry(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.putDeadline(3, []byte("dead"), -1) // born expired, like the model tests
	if _, ok := s.Get(3); ok {
		t.Fatal("expired entry visible through the optimistic path")
	}
	st := s.Stats().Total()
	if st.SeqReads != 1 {
		t.Fatalf("SeqReads = %d, want 1 (expiry must not force a fallback)", st.SeqReads)
	}
	if st.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", st.Expired)
	}
}

// TestSeqReadDisabled pins the kill switch: with a zero attempt budget
// every read takes the lock and the seq counters stay untouched.
func TestSeqReadDisabled(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.SetSeqReadAttempts(0)
	s.Put(1, []byte("x"))
	if v, ok := s.Get(1); !ok || string(v) != "x" {
		t.Fatalf("Get with seq reads disabled = %q, %v", v, ok)
	}
	s.MultiGet([]uint64{1, 2})
	st := s.Stats().Total()
	if st.SeqReads != 0 || st.SeqRetries != 0 || st.SeqFallbacks != 0 {
		t.Fatalf("seq counters %d/%d/%d with the path disabled",
			st.SeqReads, st.SeqRetries, st.SeqFallbacks)
	}
	if st.Gets != 1 || st.GetHits != 1 {
		t.Fatalf("gets/hits = %d/%d", st.Gets, st.GetHits)
	}
}

// TestMemtableOptimisticReads covers the opt-in Memtable path: disabled by
// default (the paper-figure benches measure locks), correct when enabled,
// and torn reads invisible under a forced collision.
func TestMemtableOptimisticReads(t *testing.T) {
	m, err := NewMemtable(1, mkStd)
	if err != nil {
		t.Fatal(err)
	}
	m.Put(9, []byte("alpha"))
	if v, ok := m.Get(9); !ok || string(v) != "alpha" {
		t.Fatalf("default Get = %q, %v", v, ok)
	}
	m.SetSeqReadAttempts(2)
	if v, ok := m.Get(9); !ok || string(v) != "alpha" {
		t.Fatalf("optimistic Get = %q, %v", v, ok)
	}
	fired := false
	installSeqReadHook(t, func(k uint64) {
		if fired {
			return
		}
		fired = true
		m.Put(9, []byte("omega"))
	})
	if v, ok := m.Get(9); !ok || string(v) != "omega" {
		t.Fatalf("post-collision Get = %q, %v; want \"omega\"", v, ok)
	}
}
