// Command bravobench regenerates the paper's user-space evaluation
// (Figures 1–6, §5) and runs the repo's forward-looking workloads.
//
// Two figure modes:
//
//	-mode native   run the real lock implementations on goroutines
//	               (overhead-accurate; scalability limited by host CPUs)
//	-mode sim      run the deterministic coherence-cost simulator on the
//	               paper's X5-2 topology (reproduces the figures' shapes)
//
// Workloads beyond the paper select with -workload:
//
//	-workload figures      the default: regenerate -fig
//	-workload shardedkv    drive the sharded KV engine across the
//	                       shards × substrate × threads grid, against the
//	                       single-lock memtable baseline; -json additionally
//	                       writes machine-readable BENCH_shardedkv.json
//	-workload readlatency  compare read-acquisition latency through a reader
//	                       handle (cached-slot CAS), the anonymous
//	                       hash-per-acquisition path, and the optimistic
//	                       seqlock section (zero-CAS, validated, handle
//	                       fallback) on the same BRAVO lock, at 0% and 10%
//	                       writes; -json writes BENCH_readlatency.json
//	-workload kvserv       loadgen for the serving pipeline behind
//	                       cmd/kvserv: handle-pinned readers stream GETs
//	                       while writers stream single Puts vs batched
//	                       MultiPuts (write combining); -json writes
//	                       BENCH_kvserv.json with the batched-vs-single
//	                       comparison
//	-workload wal          the durability axis: batched writers against a
//	                       volatile engine, a WAL without fsync, and a WAL
//	                       with one fsync per group-commit batch; -json
//	                       writes BENCH_wal.json with durable-vs-volatile
//	                       ratios and achieved group-commit batch sizes
//	-workload repl         the replication axis: a durable primary behind a
//	                       real kvserv TCP socket streams its LSN-stamped
//	                       WAL to -followers in-memory replicas while one
//	                       writer streams batches and per-follower readers
//	                       hammer the replicas; -json writes BENCH_repl.json
//	                       with follower-read scaling, replication lag, and
//	                       post-storm convergence time
//	-workload wire         the transport axis: the pipelined binary wire
//	                       protocol vs HTTP/1.1 over real TCP, same engine,
//	                       same MPUT/MGET batches, across -conns connection
//	                       counts and -depths pipeline depths; -json writes
//	                       BENCH_wire.json with wire-over-HTTP ratios
//	-workload cluster      the partition axis: hash-routed partitioned
//	                       primaries under a routed read/write storm across
//	                       -partitions counts, then a graceful failover of
//	                       every partition measuring
//	                       recovery-time-to-first-write; -json writes
//	                       BENCH_cluster.json
//	-workload adaptive     the bias-policy axis: the self-tuning adaptive
//	                       lock vs its static endpoints (always-biased
//	                       BRAVO, always-fair FIFO) over read-only,
//	                       zipf-skewed, write-heavy, and phase-shifting
//	                       mixes; -json writes BENCH_adaptive.json with
//	                       adaptive-vs-best-static ratios and the
//	                       acceptance verdict
//
// Examples:
//
//	bravobench -fig 2                 # alternator, simulated X5-2
//	bravobench -fig 4 -sub f          # RWBench at 0.01% writes
//	bravobench -fig all -mode native -interval 100ms
//	bravobench -scanrate              # revocation scan ns/slot (Table-less §3 claim)
//	bravobench -workload shardedkv -json
//	bravobench -workload shardedkv -shards 1,4,16 -locks bravo-ba -threads 8
//	bravobench -workload readlatency -json -threads 8,16
//	bravobench -workload kvserv -json -batch 64 -threads 8,16
//	bravobench -workload wal -json -threads 2,8
//	bravobench -workload repl -json -followers 1,2,4
//	bravobench -workload wire -json -conns 64,256 -depths 1,32
//	bravobench -workload cluster -json -partitions 1,2,4
//	bravobench -workload adaptive -json -threads 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/bravolock/bravo/internal/bench"
	"github.com/bravolock/bravo/internal/cliutil"
	_ "github.com/bravolock/bravo/internal/locks/all"
	"github.com/bravolock/bravo/internal/sim"
)

var (
	figFlag      = flag.String("fig", "all", "figure to regenerate: 1,2,3,4,5,6 or all")
	subFlag      = flag.String("sub", "", "figure 4 sub-plot: a..f (default: all)")
	modeFlag     = flag.String("mode", "sim", "native or sim")
	intervalFlag = flag.Duration("interval", 200*time.Millisecond, "native measurement interval per run (paper: 10s)")
	runsFlag     = flag.Int("runs", 3, "native runs per point; median reported (paper: 7)")
	threadsFlag  = flag.String("threads", "1,2,5,10,20,50", "thread counts")
	locksFlag    = flag.String("locks", "ba,bravo-ba,pthread,bravo-pthread,per-cpu,cohort-rw", "native lock lineup")
	scanFlag     = flag.Bool("scanrate", false, "measure the revocation scan rate (ns/slot) and exit")

	workloadFlag   = flag.String("workload", "figures", "figures, shardedkv, readlatency, kvserv, wal, repl, wire, cluster, or adaptive")
	jsonFlag       = flag.Bool("json", false, "shardedkv/readlatency/kvserv/wal/repl/wire: also write machine-readable results")
	outFlag        = flag.String("out", "BENCH_shardedkv.json", "shardedkv/readlatency/kvserv/wal/repl/wire: -json output path (workload-specific default)")
	guardBaseFlag  = flag.String("guardbaseline", "", "readlatency: prior BENCH_readlatency.json from a build without the unlock guard; stamps a guard_overhead comparison into the -json output")
	shardsFlag     = flag.String("shards", "1,2,4,8", "shardedkv/kvserv/wal/repl: shard counts (powers of two)")
	writeRatioFlag = flag.Float64("writeratio", 0.01, "shardedkv: fraction of operations that write")
	valueSizeFlag  = flag.Int("valuesize", bench.ShardedKVDefaultValueSize, "shardedkv/kvserv/wal/repl: value payload bytes (sets critical-section length)")
	batchFlag      = flag.Int("batch", bench.KVServDefaultBatch, "kvserv/wal/repl: MultiPut group size in batched mode")
	followersFlag  = flag.String("followers", "1,2,4", "repl: follower fleet sizes; cluster: followers per partition (one entry)")
	readersFlag    = flag.Int("readers", bench.ReplDefaultReaders, "repl: reader goroutines per follower; cluster: total reader goroutines")
	writeRateFlag  = flag.Int("writerate", bench.ReplDefaultWriteRate, "repl: paced primary write load in keys/sec (0: unpaced)")
	connsFlag      = flag.String("conns", "64,256,1024,4096", "wire: client connection counts")
	depthsFlag     = flag.String("depths", "1,8,32", "wire: pipeline depths for the binary protocol")
	partitionsFlag = flag.String("partitions", "1,2,4", "cluster: partitioned primary counts")
)

// shardedKVDefaults replace the figure-oriented flag defaults when the
// shardedkv workload runs and the user did not set the flag explicitly.
// Blocking substrates behave sanely at thread counts beyond the CPU count,
// unlike spinning BA; mutex is the lineup's single-lock worst case (every
// reader serializes, §7's BRAVO-over-mutex motivation), go-rw the Go
// standard baseline, and bravo-go shows the fast-path hit rate.
const (
	shardedKVDefaultLocks   = "mutex,go-rw,bravo-go"
	shardedKVDefaultThreads = "1,2,4,8,16"
)

// readLatencyDefaults replace the figure-oriented defaults for the
// readlatency workload: BRAVO locks only (the comparison is handle vs.
// anonymous on the same lock), with the goroutine axis crossing the
// CPU count.
const (
	readLatencyDefaultLocks   = "bravo-ba,bravo-go"
	readLatencyDefaultThreads = "1,4,8,16"
	readLatencyDefaultOut     = "BENCH_readlatency.json"
)

// kvservDefaults replace the figure-oriented defaults for the kvserv
// workload: the serving substrate (bravo-go shows the fast-path rate the
// acceptance bar reads), the served engine's shard count, a goroutine axis
// crossing 8 (the write-combining acceptance point), and the serving
// value size.
const (
	kvservDefaultLocks   = "bravo-go"
	kvservDefaultShards  = "8"
	kvservDefaultThreads = "2,4,8,16"
	kvservDefaultOut     = "BENCH_kvserv.json"
)

// walDefaults replace the figure-oriented defaults for the wal workload:
// the serving substrate over the served shard count, a goroutine axis with
// at least two contention levels (the durable-vs-volatile acceptance bar),
// and the kvserv batch size so the group-commit amortization factor
// matches the serving pipeline's.
const (
	walDefaultLocks   = "bravo-go"
	walDefaultShards  = "8"
	walDefaultThreads = "2,8"
	walDefaultOut     = "BENCH_wal.json"
)

// replDefaults replace the figure-oriented defaults for the repl workload:
// the serving substrate on both ends of the wire, the served shard count,
// and the follower axis the report's read-scaling claim reads.
const (
	replDefaultLocks  = "bravo-go"
	replDefaultShards = "8"
	replDefaultOut    = "BENCH_repl.json"
)

// wireDefaults replace the figure-oriented defaults for the wire
// workload: one serving substrate, one shard count — the sweep's axes are
// protocol, connection count, and pipeline depth.
const (
	wireDefaultLocks  = "bravo-go"
	wireDefaultShards = "8"
	wireDefaultOut    = "BENCH_wire.json"
)

// clusterDefaults replace the figure-oriented defaults for the cluster
// workload: one serving substrate, a modest per-partition shard count (the
// sweep's axis is partitions, not shards), one follower per partition (the
// failover pool the recovery measurement promotes from).
const (
	clusterDefaultLocks     = "bravo-go"
	clusterDefaultShards    = "4"
	clusterDefaultFollowers = "1"
	clusterDefaultOut       = "BENCH_cluster.json"
)

// adaptiveDefaults replace the figure-oriented defaults for the adaptive
// workload: the settings lineup is fixed inside the sweep (adaptive-go vs
// bravo-go vs fair), one thread count (the axis is the mix, not threads),
// and intervals long enough that the phase-shifting rows hold each phase
// across many adaptor windows.
const (
	adaptiveDefaultThreads = "8"
	adaptiveDefaultOut     = "BENCH_adaptive.json"
)

// rwbenchSubs maps Figure 4's sub-plots to write probabilities.
var rwbenchSubs = []struct {
	sub   string
	prob  float64
	label string
}{
	{"a", 0.9, "90% writes (9/10)"},
	{"b", 0.5, "50% writes (1/2)"},
	{"c", 0.1, "10% writes (1/10)"},
	{"d", 0.01, "1% writes (1/100)"},
	{"e", 0.001, ".1% writes (1/1000)"},
	{"f", 0.0001, ".01% writes (1/10000)"},
}

func main() {
	flag.Parse()
	if *scanFlag {
		rate := bench.RevocationScanRate(4096, 200)
		fmt.Printf("revocation scan rate: %.2f ns/slot over a 4096-entry table (paper: ≈1.1 ns/slot)\n", rate)
		return
	}
	switch *workloadFlag {
	case "shardedkv":
		// Contended blocking locks are bistable (sync.Mutex starvation
		// mode), so this workload needs a longer protocol than the figure
		// defaults for stable medians.
		applyWorkloadDefaults(map[string]func(){
			"locks":    func() { *locksFlag = shardedKVDefaultLocks },
			"threads":  func() { *threadsFlag = shardedKVDefaultThreads },
			"interval": func() { *intervalFlag = 500 * time.Millisecond },
			"runs":     func() { *runsFlag = 5 },
		})
	case "readlatency":
		applyWorkloadDefaults(map[string]func(){
			"locks":    func() { *locksFlag = readLatencyDefaultLocks },
			"threads":  func() { *threadsFlag = readLatencyDefaultThreads },
			"interval": func() { *intervalFlag = 500 * time.Millisecond },
			"runs":     func() { *runsFlag = 5 },
			"out":      func() { *outFlag = readLatencyDefaultOut },
		})
	case "kvserv":
		applyWorkloadDefaults(map[string]func(){
			"locks":     func() { *locksFlag = kvservDefaultLocks },
			"shards":    func() { *shardsFlag = kvservDefaultShards },
			"threads":   func() { *threadsFlag = kvservDefaultThreads },
			"interval":  func() { *intervalFlag = 500 * time.Millisecond },
			"runs":      func() { *runsFlag = 5 },
			"valuesize": func() { *valueSizeFlag = bench.KVServDefaultValueSize },
			"out":       func() { *outFlag = kvservDefaultOut },
		})
	case "wal":
		applyWorkloadDefaults(map[string]func(){
			"locks":     func() { *locksFlag = walDefaultLocks },
			"shards":    func() { *shardsFlag = walDefaultShards },
			"threads":   func() { *threadsFlag = walDefaultThreads },
			"interval":  func() { *intervalFlag = 500 * time.Millisecond },
			"runs":      func() { *runsFlag = 5 },
			"valuesize": func() { *valueSizeFlag = bench.KVServDefaultValueSize },
			"batch":     func() { *batchFlag = bench.WALDefaultBatch },
			"out":       func() { *outFlag = walDefaultOut },
		})
	case "repl":
		applyWorkloadDefaults(map[string]func(){
			"locks":     func() { *locksFlag = replDefaultLocks },
			"shards":    func() { *shardsFlag = replDefaultShards },
			"interval":  func() { *intervalFlag = 500 * time.Millisecond },
			"runs":      func() { *runsFlag = 3 },
			"valuesize": func() { *valueSizeFlag = bench.KVServDefaultValueSize },
			"batch":     func() { *batchFlag = bench.WALDefaultBatch },
			"out":       func() { *outFlag = replDefaultOut },
		})
	case "wire":
		applyWorkloadDefaults(map[string]func(){
			"locks":     func() { *locksFlag = wireDefaultLocks },
			"shards":    func() { *shardsFlag = wireDefaultShards },
			"interval":  func() { *intervalFlag = 500 * time.Millisecond },
			"runs":      func() { *runsFlag = 3 },
			"valuesize": func() { *valueSizeFlag = bench.WireDefaultValueSize },
			"batch":     func() { *batchFlag = bench.WireDefaultBatch },
			"out":       func() { *outFlag = wireDefaultOut },
		})
	case "cluster":
		applyWorkloadDefaults(map[string]func(){
			"locks":     func() { *locksFlag = clusterDefaultLocks },
			"shards":    func() { *shardsFlag = clusterDefaultShards },
			"followers": func() { *followersFlag = clusterDefaultFollowers },
			"interval":  func() { *intervalFlag = 500 * time.Millisecond },
			"runs":      func() { *runsFlag = 3 },
			"valuesize": func() { *valueSizeFlag = bench.KVServDefaultValueSize },
			"batch":     func() { *batchFlag = bench.WALDefaultBatch },
			"out":       func() { *outFlag = clusterDefaultOut },
		})
	case "adaptive":
		applyWorkloadDefaults(map[string]func(){
			"threads":  func() { *threadsFlag = adaptiveDefaultThreads },
			"interval": func() { *intervalFlag = 500 * time.Millisecond },
			"runs":     func() { *runsFlag = 3 },
			"out":      func() { *outFlag = adaptiveDefaultOut },
		})
	}
	threads, err := cliutil.ParseInts(*threadsFlag)
	if err != nil {
		fatal(err)
	}
	cfg := bench.Config{Interval: *intervalFlag, Runs: *runsFlag, Threads: threads}
	locks := cliutil.ParseNames(*locksFlag)
	if *workloadFlag == "shardedkv" {
		runShardedKV(cfg, locks)
		return
	}
	if *workloadFlag == "readlatency" {
		runReadLatency(cfg, locks)
		return
	}
	if *workloadFlag == "kvserv" {
		runKVServ(cfg, locks)
		return
	}
	if *workloadFlag == "wal" {
		runWAL(cfg, locks)
		return
	}
	if *workloadFlag == "repl" {
		runRepl(cfg, locks)
		return
	}
	if *workloadFlag == "wire" {
		runWire(cfg, locks)
		return
	}
	if *workloadFlag == "cluster" {
		runCluster(cfg, locks)
		return
	}
	if *workloadFlag == "adaptive" {
		runAdaptive(cfg)
		return
	}
	if *workloadFlag != "figures" {
		fatal(fmt.Errorf("unknown workload %q (figures, shardedkv, readlatency, kvserv, wal, repl, wire, cluster, adaptive)", *workloadFlag))
	}
	figs := []string{"1", "2", "3", "4", "5", "6"}
	if *figFlag != "all" {
		figs = []string{*figFlag}
	}
	for _, fig := range figs {
		switch fig {
		case "1":
			runFigure1(cfg)
		case "2":
			runSeriesFigure(cfg, locks, "Figure 2: Alternator", "Msteps/10s-equivalent",
				func() sim.Series { return sim.Figure2Alternator(threads) },
				func(lock string, tc int) float64 { return bench.Alternator(lock, tc, cfg) })
		case "3":
			runSeriesFigure(cfg, locks, "Figure 3: test_rwlock", "ops/msec-equivalent",
				func() sim.Series { return sim.Figure3TestRWLock(threads) },
				func(lock string, tc int) float64 { return bench.TestRWLock(lock, tc, cfg) })
		case "4":
			for _, sp := range rwbenchSubs {
				if *subFlag != "" && *subFlag != sp.sub {
					continue
				}
				sp := sp
				runSeriesFigure(cfg, locks,
					fmt.Sprintf("Figure 4%s: RWBench with %s", sp.sub, sp.label), "ops/msec-equivalent",
					func() sim.Series { return sim.Figure4RWBench(threads, sp.prob) },
					func(lock string, tc int) float64 {
						return bench.RWBench(lock, tc, sp.prob, cfg)
					})
			}
		case "5":
			runSeriesFigure(cfg, locks, "Figure 5: rocksdb readwhilewriting", "M ops/sec-equivalent",
				func() sim.Series { return sim.Figure5ReadWhileWriting(threads) },
				func(lock string, tc int) float64 { return bench.ReadWhileWriting(lock, tc, cfg) })
		case "6":
			runSeriesFigure(cfg, locks, "Figure 6: rocksdb hash_table_bench", "ops/msec-equivalent",
				func() sim.Series { return sim.Figure6HashTable(threads) },
				func(lock string, tc int) float64 { return bench.HashTableBench(lock, tc, cfg) })
		default:
			fatal(fmt.Errorf("unknown figure %q", fig))
		}
	}
}

func runShardedKV(cfg bench.Config, locks []string) {
	shardCounts, err := cliutil.ParseInts(*shardsFlag)
	if err != nil {
		fatal(err)
	}
	for _, sc := range shardCounts {
		// Fail before the sweep spends a minute benchmarking baselines.
		if sc <= 0 || sc&(sc-1) != 0 {
			fatal(fmt.Errorf("-shards %d is not a positive power of two", sc))
		}
	}
	if *writeRatioFlag < 0 || *writeRatioFlag > 1 {
		fatal(fmt.Errorf("-writeratio %v outside [0, 1]", *writeRatioFlag))
	}
	results, err := bench.ShardedKVSweep(locks, shardCounts, cfg.Threads, *writeRatioFlag, *valueSizeFlag, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# shardedkv: %d keys, %dB values, %.1f%% writes, interval %v, median of %d\n",
		bench.ShardedKVKeys, *valueSizeFlag, 100**writeRatioFlag, cfg.Interval, cfg.Runs)
	bench.WriteShardedKVTable(os.Stdout, results)
	if !*jsonFlag {
		return
	}
	f, err := os.Create(*outFlag)
	if err != nil {
		fatal(err)
	}
	rep := bench.NewShardedKVReport(cfg, results)
	if err := rep.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d results)\n", *outFlag, len(results))
}

func runKVServ(cfg bench.Config, locks []string) {
	shardCounts, err := cliutil.ParseInts(*shardsFlag)
	if err != nil {
		fatal(err)
	}
	for _, sc := range shardCounts {
		if sc <= 0 || sc&(sc-1) != 0 {
			fatal(fmt.Errorf("-shards %d is not a positive power of two", sc))
		}
	}
	results, comps, err := bench.KVServSweep(locks, shardCounts, cfg.Threads, *batchFlag, *valueSizeFlag, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# kvserv: %d keys, %dB values, batch %d, interval %v, median of %d\n",
		bench.KVServKeys, *valueSizeFlag, *batchFlag, cfg.Interval, cfg.Runs)
	bench.WriteKVServTable(os.Stdout, results)
	fmt.Println()
	fmt.Println("# batched MultiPut vs single Put (write combining)")
	bench.WriteKVServComparisons(os.Stdout, comps)
	if !*jsonFlag {
		return
	}
	f, err := os.Create(*outFlag)
	if err != nil {
		fatal(err)
	}
	rep := bench.NewKVServReport(cfg, results, comps)
	if err := rep.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d results, %d comparisons)\n", *outFlag, len(results), len(comps))
}

func runWAL(cfg bench.Config, locks []string) {
	shardCounts, err := cliutil.ParseInts(*shardsFlag)
	if err != nil {
		fatal(err)
	}
	for _, sc := range shardCounts {
		if sc <= 0 || sc&(sc-1) != 0 {
			fatal(fmt.Errorf("-shards %d is not a positive power of two", sc))
		}
	}
	results, comps, err := bench.WALSweep(locks, shardCounts, cfg.Threads, *batchFlag, *valueSizeFlag, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# wal: %d keys, %dB values, batch %d, interval %v, median of %d\n",
		bench.WALWorkloadKeys, *valueSizeFlag, *batchFlag, cfg.Interval, cfg.Runs)
	bench.WriteWALTable(os.Stdout, results)
	fmt.Println()
	fmt.Println("# durable (group-commit WAL) vs volatile writes")
	bench.WriteWALComparisons(os.Stdout, comps)
	if !*jsonFlag {
		return
	}
	f, err := os.Create(*outFlag)
	if err != nil {
		fatal(err)
	}
	rep := bench.NewWALReport(cfg, *batchFlag, results, comps)
	if err := rep.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d results, %d comparisons)\n", *outFlag, len(results), len(comps))
}

func runRepl(cfg bench.Config, locks []string) {
	shardCounts, err := cliutil.ParseInts(*shardsFlag)
	if err != nil {
		fatal(err)
	}
	for _, sc := range shardCounts {
		if sc <= 0 || sc&(sc-1) != 0 {
			fatal(fmt.Errorf("-shards %d is not a positive power of two", sc))
		}
	}
	followerCounts, err := cliutil.ParseInts(*followersFlag)
	if err != nil {
		fatal(err)
	}
	results, err := bench.ReplSweep(locks, shardCounts, followerCounts, *readersFlag, *batchFlag, *valueSizeFlag, *writeRateFlag, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# repl: %d keys, %dB values, batch %d, %d readers/follower, write rate %d keys/s, interval %v, median of %d\n",
		bench.ReplWorkloadKeys, *valueSizeFlag, *batchFlag, *readersFlag, *writeRateFlag, cfg.Interval, cfg.Runs)
	bench.WriteReplTable(os.Stdout, results)
	if !*jsonFlag {
		return
	}
	f, err := os.Create(*outFlag)
	if err != nil {
		fatal(err)
	}
	rep := bench.NewReplReport(cfg, *batchFlag, results)
	if err := rep.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d results)\n", *outFlag, len(results))
}

func runWire(cfg bench.Config, locks []string) {
	if len(locks) != 1 {
		fatal(fmt.Errorf("wire workload takes exactly one -locks entry (the serving substrate), got %q", *locksFlag))
	}
	shardCounts, err := cliutil.ParseInts(*shardsFlag)
	if err != nil {
		fatal(err)
	}
	if len(shardCounts) != 1 || shardCounts[0] <= 0 || shardCounts[0]&(shardCounts[0]-1) != 0 {
		fatal(fmt.Errorf("wire workload takes exactly one power-of-two -shards entry, got %q", *shardsFlag))
	}
	connCounts, err := cliutil.ParseInts(*connsFlag)
	if err != nil {
		fatal(err)
	}
	depths, err := cliutil.ParseInts(*depthsFlag)
	if err != nil {
		fatal(err)
	}
	results, comps, err := bench.WireSweep(locks[0], shardCounts[0], connCounts, depths, *batchFlag, *valueSizeFlag, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# wire: %d keys, %dB values, batch %d, %d×%s shards, interval %v, median of %d\n",
		bench.WireKeys, *valueSizeFlag, *batchFlag, shardCounts[0], locks[0], cfg.Interval, cfg.Runs)
	bench.WriteWireTable(os.Stdout, results)
	fmt.Println()
	fmt.Println("# binary wire protocol vs HTTP/1.1 (same engine, same batches)")
	bench.WriteWireComparisons(os.Stdout, comps)
	if !*jsonFlag {
		return
	}
	f, err := os.Create(*outFlag)
	if err != nil {
		fatal(err)
	}
	rep := bench.NewWireReport(cfg, locks[0], shardCounts[0], *batchFlag, *valueSizeFlag, results, comps)
	if err := rep.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d results, %d comparisons)\n", *outFlag, len(results), len(comps))
}

func runCluster(cfg bench.Config, locks []string) {
	shardCounts, err := cliutil.ParseInts(*shardsFlag)
	if err != nil {
		fatal(err)
	}
	if len(shardCounts) != 1 || shardCounts[0] <= 0 || shardCounts[0]&(shardCounts[0]-1) != 0 {
		fatal(fmt.Errorf("cluster workload takes exactly one power-of-two -shards entry (per-partition shard count), got %q", *shardsFlag))
	}
	followerCounts, err := cliutil.ParseInts(*followersFlag)
	if err != nil {
		fatal(err)
	}
	if len(followerCounts) != 1 || followerCounts[0] < 1 {
		fatal(fmt.Errorf("cluster workload takes exactly one -followers entry >= 1 (the failover pool), got %q", *followersFlag))
	}
	partitionCounts, err := cliutil.ParseInts(*partitionsFlag)
	if err != nil {
		fatal(err)
	}
	results, err := bench.ClusterSweep(locks, partitionCounts, shardCounts[0], followerCounts[0], *readersFlag, *batchFlag, *valueSizeFlag, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# cluster: %d keys, %dB values, batch %d, %d readers, %d shards/partition, %d followers/partition, interval %v, median of %d\n",
		bench.ClusterWorkloadKeys, *valueSizeFlag, *batchFlag, *readersFlag, shardCounts[0], followerCounts[0], cfg.Interval, cfg.Runs)
	bench.WriteClusterTable(os.Stdout, results)
	if !*jsonFlag {
		return
	}
	f, err := os.Create(*outFlag)
	if err != nil {
		fatal(err)
	}
	rep := bench.NewClusterReport(cfg, *batchFlag, results)
	if err := rep.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d results)\n", *outFlag, len(results))
}

func runAdaptive(cfg bench.Config) {
	if len(cfg.Threads) != 1 || cfg.Threads[0] < 1 {
		fatal(fmt.Errorf("adaptive workload takes exactly one -threads entry >= 1, got %q", *threadsFlag))
	}
	results, comps, acc, err := bench.AdaptiveSweep(cfg.Threads[0], cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# adaptive: %d keys, %d shards, %d threads, interval %v, median of %d\n",
		bench.AdaptiveKeys, bench.AdaptiveShards, cfg.Threads[0], cfg.Interval, cfg.Runs)
	bench.WriteAdaptiveTable(os.Stdout, results, comps)
	if !*jsonFlag {
		return
	}
	f, err := os.Create(*outFlag)
	if err != nil {
		fatal(err)
	}
	rep := bench.NewAdaptiveReport(cfg, results, comps, acc)
	if err := rep.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d results, %d comparisons)\n", *outFlag, len(results), len(comps))
}

// applyWorkloadDefaults runs each override whose flag the user did not set
// explicitly, so workload-specific defaults never clobber the command line.
func applyWorkloadDefaults(overrides map[string]func()) {
	flag.Visit(func(f *flag.Flag) { delete(overrides, f.Name) })
	for _, apply := range overrides {
		apply()
	}
}

func runReadLatency(cfg bench.Config, locks []string) {
	results, err := bench.ReadLatencySweep(locks, cfg.Threads, bench.DefaultReadLatencyWriteRatios, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# readlatency: handle (cached-slot) vs anonymous (hash-per-read) vs seq (optimistic zero-CAS), write ratios %v, interval %v × %d runs per mode\n",
		bench.DefaultReadLatencyWriteRatios, cfg.Interval, cfg.Runs)
	bench.WriteHandleLatencyTable(os.Stdout, results)
	if !*jsonFlag {
		return
	}
	f, err := os.Create(*outFlag)
	if err != nil {
		fatal(err)
	}
	rep := bench.NewHandleLatencyReport(cfg, results)
	if *guardBaseFlag != "" {
		data, err := os.ReadFile(*guardBaseFlag)
		if err != nil {
			fatal(err)
		}
		var base bench.HandleLatencyReport
		if err := json.Unmarshal(data, &base); err != nil {
			fatal(fmt.Errorf("guardbaseline %s: %w", *guardBaseFlag, err))
		}
		g, err := bench.CompareGuardOverhead(base, rep)
		if err != nil {
			fatal(err)
		}
		rep.Guard = &g
		fmt.Printf("# guard overhead vs %s: %d rows, handle p50 ratio max %.3f, mean ratio geomean %.3f, within 2%%: %v\n",
			g.BaselineCommit, g.RowsCompared, g.MaxHandleP50Ratio, g.GeoMeanHandleMeanRatio, g.HandleP50Within2Pct)
	}
	if err := rep.WriteJSON(f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d results)\n", *outFlag, len(results))
}

func runFigure1(cfg bench.Config) {
	pools := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}
	if *modeFlag == "sim" {
		pts := sim.Figure1Interference(pools)
		out := make([]bench.Point, len(pts))
		for i, p := range pts {
			out[i] = bench.Point{X: p.Threads, Value: p.Value}
		}
		bench.WritePoints(os.Stdout, "Figure 1: Inter-Lock Interference (sim)", "locks", "throughput fraction", out)
		return
	}
	var out []bench.Point
	for _, n := range pools {
		out = append(out, bench.Point{X: n, Value: bench.Interference(n, 64, cfg)})
	}
	bench.WritePoints(os.Stdout, "Figure 1: Inter-Lock Interference (native)", "locks", "throughput fraction", out)
}

func runSeriesFigure(cfg bench.Config, locks []string, title, unit string,
	simFn func() sim.Series, nativeFn func(lock string, tc int) float64) {
	if *modeFlag == "sim" {
		s := simFn()
		out := bench.Series{}
		for name, pts := range s {
			row := make([]bench.Point, len(pts))
			for i, p := range pts {
				row[i] = bench.Point{X: p.Threads, Value: p.Value}
			}
			out[name] = row
		}
		bench.WriteSeries(os.Stdout, title+" (sim, X5-2)", "threads", unit, out)
		return
	}
	s := bench.SweepLocks(locks, cfg, nativeFn)
	bench.WriteSeries(os.Stdout, title+" (native)", "threads", "ops/interval", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bravobench:", err)
	os.Exit(1)
}
