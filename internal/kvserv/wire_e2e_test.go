package kvserv

// End-to-end wire-protocol jobs over real TCP: the binary front-end on a
// replicating primary/follower pair (commit-LSN tokens cross the wire and
// gate follower reads), graceful-shutdown draining of pipelined requests,
// and a many-connection smoke that the race detector watches.

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/repl"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/wire"
)

// addWireListener attaches a wire listener to an already-constructed server
// (either role), mirroring cmd/kvserv's -wire-addr startup.
func addWireListener(t *testing.T, srv *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeWire(l)
	return l.Addr().String()
}

// TestWireE2EFollowerMinLSN drives the full read-your-writes loop in
// binary: write on the primary's wire port, carry the commit-LSN token to
// the follower's wire port, and read the value back gated on that token.
func TestWireE2EFollowerMinLSN(t *testing.T) {
	dir := t.TempDir()
	engine, err := kvs.OpenSharded(dir, 8, func() rwl.RWLock { return core.New(new(stdrw.Lock)) }, kvs.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { engine.Close() })
	// The HTTP listener carries the replication stream; the wire listener
	// carries the KV traffic under test.
	primaryURL := startServerWith(t, engine, Config{ReapInterval: -1})

	primarySrv := New(engine, Config{ReapInterval: -1})
	t.Cleanup(func() { primarySrv.Close() })
	primaryWire := addWireListener(t, primarySrv)

	f, err := repl.Open(repl.Config{
		Primary:       primaryURL,
		MkLock:        func() rwl.RWLock { return core.New(new(stdrw.Lock)) },
		RetryInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	followerSrv := NewFollower(f, Config{ReapInterval: -1, MinLSNWait: 2 * time.Second})
	t.Cleanup(func() { followerSrv.Close() })
	followerWire := addWireListener(t, followerSrv)

	pc := wire.NewClient(primaryWire, time.Second)
	defer pc.Close()
	fc := wire.NewClient(followerWire, time.Second)
	defer fc.Close()

	// Write on the primary: the response carries the shard's commit LSN.
	lsns, err := pc.Put(42, []byte("hello"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 1 || lsns[0].LSN == 0 {
		t.Fatalf("durable wire PUT returned LSNs %v, want one nonzero token", lsns)
	}
	token := lsns[0].LSN

	// Read-your-writes on the follower, token-gated: the follower waits for
	// replication to cover the token, then serves the value.
	v, ok, err := fc.Get(42, token)
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("follower wire Get(min_lsn=%d) = %q, %v, %v", token, v, ok, err)
	}
	// A token from the future conflicts after the bounded wait. Use a
	// short-wait connection so the test does not sit out the full window.
	shortSrv := NewFollower(f, Config{ReapInterval: -1, MinLSNWait: 50 * time.Millisecond})
	t.Cleanup(func() { shortSrv.Close() })
	sc := wire.NewClient(addWireListener(t, shortSrv), time.Second)
	defer sc.Close()
	if _, _, err := sc.Get(42, token+1_000_000); err == nil {
		t.Fatal("future token served instead of conflicting")
	} else if se, okErr := err.(*wire.StatusError); !okErr || se.Status != wire.StatusConflict {
		t.Fatalf("future token error = %v, want StatusConflict", err)
	}
	// Writes on the follower's wire port are refused read-only.
	if _, err := fc.Put(7, []byte("nope"), 0, false); err == nil {
		t.Fatal("follower accepted a wire write")
	} else if se, okErr := err.(*wire.StatusError); !okErr || se.Status != wire.StatusReadOnly {
		t.Fatalf("follower write error = %v, want StatusReadOnly", err)
	}
	// The batched path honors tokens too. A single min_lsn gates every
	// shard an MGET touches, so the read-your-writes pattern is per-shard:
	// batch keys of one shard, gate on that shard's token.
	shard := engine.ShardOf(100)
	keys := []uint64{100}
	for k := uint64(101); len(keys) < 3; k++ {
		if engine.ShardOf(k) == shard {
			keys = append(keys, k)
		}
	}
	mlsns, err := pc.MPut(keys, [][]byte{{0xA}, {0xB}, {0xC}}, 0)
	if err != nil || len(mlsns) != 1 {
		t.Fatalf("same-shard wire MPut: %v, lsns %v (want exactly one shard token)", err, mlsns)
	}
	vals, err := fc.MGet(keys, mlsns[0].LSN)
	if err != nil || len(vals) != 3 || vals[0] == nil || vals[0][0] != 0xA || vals[2] == nil || vals[2][0] != 0xC {
		t.Fatalf("follower wire MGet(min_lsn=%d) = %v, %v", mlsns[0].LSN, vals, err)
	}
}

// TestWireCloseDrainsPipelined pins the graceful-shutdown drain: a burst of
// pipelined requests already on the socket when Close begins must all be
// answered before the connection drops.
func TestWireCloseDrainsPipelined(t *testing.T) {
	addr, _, srv := startWireServer(t, nil, Config{ReapInterval: -1})
	conn, err := wire.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The burst is one small TCP write, so the server's first read slurps
	// every frame into its decoder buffer — from there the drain guarantee
	// owns them.
	const burst = 64
	pending := make([]*wire.Pending, 0, burst)
	for i := uint64(0); i < burst; i++ {
		p, err := conn.Start(&wire.Request{Op: wire.OpPut, Key: i, Value: []byte("drain")})
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, p)
	}
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}
	// The first answer proves the server has read the burst; then shut down
	// while the rest are still queued behind it.
	if _, err := pending[0].Wait(); err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	// pending[0] was consumed above (a Pending answers exactly once).
	for i, p := range pending[1:] {
		if resp, err := p.Wait(); err != nil {
			t.Fatalf("pipelined request %d lost in shutdown: %v", i, err)
		} else if resp.Status != wire.StatusOK {
			t.Fatalf("pipelined request %d answered %v during drain", i, resp.Status)
		}
	}
	<-closed
}

// TestWireManyConnections is the many-connection smoke CI runs under
// -race: hundreds of concurrent wire connections, each with its own pinned
// reader, reading and writing through the same engine.
func TestWireManyConnections(t *testing.T) {
	conns := 1000
	if testing.Short() {
		conns = 100
	}
	addr, _, _ := startWireServer(t, nil, Config{ReapInterval: -1})
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			conn, err := wire.Dial(addr, 10*time.Second)
			if err != nil {
				errs <- fmt.Errorf("conn %d: dial: %w", id, err)
				return
			}
			defer conn.Close()
			if _, err := conn.Do(&wire.Request{Op: wire.OpPut, Key: id, Value: []byte{byte(id)}}); err != nil {
				errs <- fmt.Errorf("conn %d: put: %w", id, err)
				return
			}
			resp, err := conn.Do(&wire.Request{Op: wire.OpGet, Key: id})
			if err != nil || resp.Status != wire.StatusOK || len(resp.Value) != 1 || resp.Value[0] != byte(id) {
				errs <- fmt.Errorf("conn %d: get = %v, %v", id, resp.Status, err)
			}
		}(uint64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
