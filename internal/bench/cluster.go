package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bravolock/bravo/internal/cluster"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/xrand"
)

// The cluster workload measures what partitioning buys and what failover
// costs: aggregate write/read throughput across partition counts (the
// write path serializes per partition, so aggregate write throughput is
// the scaling claim), and recovery-time-to-first-write — how long a
// partition's keys are unwritable while a kill-and-promote failover runs.
// The full stack is exercised in-process: hash routing, per-partition
// durable primaries, follower streaming, fencing, and promotion; writers
// stream cross-partition MultiPut batches the way the MPUT front-end fans
// them out, readers hit the routed read path through pinned handles.

// ClusterWorkloadKeys is the workload's keyspace.
const ClusterWorkloadKeys = 1 << 14

// ClusterDefaultReaders is the total reader goroutine count.
const ClusterDefaultReaders = 4

// ClusterResult is one (lock, partitions) measurement.
type ClusterResult struct {
	Lock       string `json:"lock"`
	Partitions int    `json:"partitions"`
	// Shards is each partition engine's shard count: the write-parallelism
	// within a partition, as distinct from across them.
	Shards    int `json:"shards_per_partition"`
	Followers int `json:"followers_per_partition"`
	// Writers writer goroutines (one per partition) stream MultiPut batches
	// of BatchSize random keys — each batch fans out across partitions the
	// way the MPUT front-end routes it — while Readers reader goroutines
	// stream routed Gets through pinned handles.
	Writers   int `json:"writers"`
	Readers   int `json:"readers"`
	BatchSize int `json:"batch_size"`
	ValueSize int `json:"value_size"`

	// Aggregate throughput during the storm (median over runs).
	WriteKeysPerSec float64 `json:"write_keys_per_sec"`
	ReadsPerSec     float64 `json:"reads_per_sec"`

	// Failover cost, last run: every partition is failed over once
	// (graceful: caught-up followers), and recovery is the wall time from
	// entering Failover to the first acknowledged write on the promoted
	// primary — the window the partition's keys are unwritable.
	Failovers      int     `json:"failovers"`
	RecoveryMeanMS float64 `json:"recovery_mean_ms"`
	RecoveryMaxMS  float64 `json:"recovery_max_ms"`
}

// ClusterReport is the top-level BENCH_cluster.json document.
type ClusterReport struct {
	Benchmark  string          `json:"benchmark"`
	Meta       RunMeta         `json:"meta"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	IntervalMS int64           `json:"interval_ms"`
	Runs       int             `json:"runs"`
	Keys       int             `json:"keys"`
	Batch      int             `json:"batch"`
	Results    []ClusterResult `json:"results"`
}

// WriteJSON renders the report as indented JSON.
func (r ClusterReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// NewClusterReport stamps the environment fields of a report.
func NewClusterReport(cfg Config, batch int, results []ClusterResult) ClusterReport {
	return ClusterReport{
		Benchmark:  "cluster",
		Meta:       NewRunMeta(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		IntervalMS: cfg.Interval.Milliseconds(),
		Runs:       cfg.Runs,
		Keys:       ClusterWorkloadKeys,
		Batch:      batch,
		Results:    results,
	}
}

// ClusterPoint measures one (lock, partitions) point: cfg.Runs fresh
// cluster deployments, median throughputs, last run's failover costs.
func ClusterPoint(lockName string, partitions, shards, followers, readers, batch, valueSize int, cfg Config) (ClusterResult, error) {
	if partitions < 1 {
		return ClusterResult{}, fmt.Errorf("bench: cluster partitions %d (want >= 1)", partitions)
	}
	if followers < 1 {
		return ClusterResult{}, fmt.Errorf("bench: cluster followers %d (want >= 1: the failover pool)", followers)
	}
	if batch < 2 {
		return ClusterResult{}, fmt.Errorf("bench: cluster batch %d (want >= 2)", batch)
	}
	if readers < 1 {
		readers = ClusterDefaultReaders
	}
	mk, _, err := shardedKVFactory(lockName)
	if err != nil {
		return ClusterResult{}, err
	}
	res := ClusterResult{
		Lock: lockName, Partitions: partitions, Shards: shards, Followers: followers,
		Writers: partitions, Readers: readers, BatchSize: batch, ValueSize: valueSize,
	}
	if res.ValueSize < 8 {
		res.ValueSize = 8
	}
	writes := make([]float64, 0, cfg.Runs)
	reads := make([]float64, 0, cfg.Runs)
	runs := cfg.Runs
	if runs < 1 {
		runs = 1
	}
	for i := 0; i < runs; i++ {
		w, r, err := clusterRun(mk, &res, cfg.Interval)
		if err != nil {
			return res, err
		}
		writes = append(writes, w)
		reads = append(reads, r)
	}
	res.WriteKeysPerSec = median(writes) / cfg.Interval.Seconds()
	res.ReadsPerSec = median(reads) / cfg.Interval.Seconds()
	return res, nil
}

// clusterRun deploys one cluster, runs the storm interval, then fails over
// every partition measuring recovery-time-to-first-write. Returns raw
// (keys written, reads) counts and fills res's failover fields.
func clusterRun(mk rwl.Factory, res *ClusterResult, interval time.Duration) (wrote, read float64, err error) {
	dir, err := os.MkdirTemp("", "bravo-clusterbench-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	c, err := cluster.Open(cluster.Config{
		Partitions:    res.Partitions,
		Shards:        res.Shards,
		Followers:     res.Followers,
		Dir:           dir,
		Policy:        kvs.SyncNone,
		MkLock:        mk,
		RetryInterval: 10 * time.Millisecond,
	})
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()

	// Prefill so readers hit resident keys.
	val := make([]byte, res.ValueSize)
	keys := make([]uint64, res.BatchSize)
	vals := make([][]byte, res.BatchSize)
	for i := range vals {
		vals[i] = val
	}
	prefill := xrand.NewXorShift64(0x5EEDBEEF)
	for n := 0; n < ClusterWorkloadKeys; n += res.BatchSize {
		for i := range keys {
			keys[i] = prefill.Next() % ClusterWorkloadKeys
		}
		if _, err := c.MultiPut(keys, vals, 0); err != nil {
			return 0, 0, err
		}
	}

	// The storm: one writer per partition streaming fan-out batches,
	// readers hammering the routed read path.
	var stop atomic.Bool
	var wroteKeys, readOps atomic.Uint64
	var wg sync.WaitGroup
	var firstErr atomic.Value
	for w := 0; w < res.Writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.NewXorShift64(seed)
			wkeys := make([]uint64, res.BatchSize)
			for !stop.Load() {
				for i := range wkeys {
					wkeys[i] = rng.Next() % ClusterWorkloadKeys
				}
				if _, err := c.MultiPut(wkeys, vals, 0); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				wroteKeys.Add(uint64(res.BatchSize))
			}
		}(uint64(0xA11CE + w))
	}
	for r := 0; r < res.Readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := rwl.NewReader()
			rng := xrand.NewXorShift64(seed)
			buf := make([]byte, 0, res.ValueSize)
			n := uint64(0)
			for !stop.Load() {
				buf, _ = c.Get(h, rng.Next()%ClusterWorkloadKeys, buf[:0])
				n++
				if n&1023 == 0 {
					runtime.Gosched()
				}
			}
			readOps.Add(n)
		}(uint64(0xBEAD + r))
	}
	time.Sleep(interval)
	stop.Store(true)
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return 0, 0, e.(error)
	}

	// Recovery-time-to-first-write: fail over every partition (graceful —
	// followers drained first, so the cut is lossless and the clock charges
	// promotion, not catch-up) and probe until a routed write lands on the
	// promoted primary.
	probe := make([]uint64, res.Partitions) // one owned key per partition, +1
	for k, found := uint64(0), 0; found < res.Partitions && k < ClusterWorkloadKeys; k++ {
		if pi := c.Partition(k); probe[pi] == 0 {
			probe[pi] = k + 1 // store key+1 so 0 means "not found yet"
			found++
		}
	}
	var recoverSum, recoverMax float64
	for pi := 0; pi < res.Partitions; pi++ {
		if probe[pi] == 0 {
			return 0, 0, fmt.Errorf("bench: partition %d owns none of the %d workload keys", pi, ClusterWorkloadKeys)
		}
		if err := c.WaitCaughtUp(30 * time.Second); err != nil {
			return 0, 0, err
		}
		t0 := time.Now()
		for {
			if _, err := c.Failover(pi); err == nil {
				break
			} else if !errors.Is(err, cluster.ErrNotReady) {
				return 0, 0, fmt.Errorf("bench: failover partition %d: %w", pi, err)
			}
			time.Sleep(time.Millisecond)
		}
		key := probe[pi] - 1
		for {
			if _, err := c.Put(key, val, 0); err == nil {
				break
			} else if !errors.Is(err, cluster.ErrFenced) {
				return 0, 0, fmt.Errorf("bench: post-failover write partition %d: %w", pi, err)
			}
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000
		recoverSum += ms
		if ms > recoverMax {
			recoverMax = ms
		}
	}
	res.Failovers = res.Partitions
	res.RecoveryMeanMS = recoverSum / float64(res.Partitions)
	res.RecoveryMaxMS = recoverMax
	return float64(wroteKeys.Load()), float64(readOps.Load()), nil
}

// ClusterSweep measures the partition axis for every lock.
func ClusterSweep(locks []string, partitionCounts []int, shards, followers, readers, batch, valueSize int, cfg Config) ([]ClusterResult, error) {
	var results []ClusterResult
	for _, lock := range locks {
		for _, pc := range partitionCounts {
			r, err := ClusterPoint(lock, pc, shards, followers, readers, batch, valueSize, cfg)
			if err != nil {
				return nil, err
			}
			results = append(results, r)
		}
	}
	return results, nil
}

// WriteClusterTable renders the measurements as the aligned human-readable
// companion of the JSON report.
func WriteClusterTable(w io.Writer, results []ClusterResult) {
	const format = "%-10s %11s %7s %10s %12s %12s %10s %12s %11s\n"
	fmt.Fprintf(w, format, "lock", "partitions", "shards", "followers",
		"wkeys/sec", "reads/sec", "failovers", "recover(ms)", "recmax(ms)")
	for _, r := range results {
		fmt.Fprintf(w, format, r.Lock,
			fmt.Sprintf("%d", r.Partitions), fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%d", r.Followers),
			fmt.Sprintf("%.0f", r.WriteKeysPerSec),
			fmt.Sprintf("%.0f", r.ReadsPerSec),
			fmt.Sprintf("%d", r.Failovers),
			fmt.Sprintf("%.1f", r.RecoveryMeanMS),
			fmt.Sprintf("%.1f", r.RecoveryMaxMS))
	}
}
