package sim

import (
	"github.com/bravolock/bravo/internal/hash"
)

// RWLock is a simulated reader-writer lock. Acquire methods take the
// attempt time and the intended critical-section length and return the
// admission time; they record the projected occupancy (admission + cs) so
// that threads scheduled between a holder's acquire and release events
// observe the lock as held. Release methods perform the departure accesses.
type RWLock interface {
	AcquireRead(th *Thread, t, cs float64) float64
	ReleaseRead(th *Thread, t float64) float64
	AcquireWrite(th *Thread, t, cs float64) float64
	ReleaseWrite(th *Thread, t float64) float64
}

// Central models the compact centralized-indicator family: BA (PF-Q), PF-T,
// pthread_rwlock and rwsem. Reader arrival and departure RMW the central
// counter lines — the coherence hot spot — and writers drain readers.
// Blocking variants pay park/wake costs instead of spinning.
//
// Layout knobs mirror the real implementations: the B&A locks keep arrival
// (rin) and departure (rout) counters on separate padded lines; rwsem keeps
// one counter word, plus — in the stock kernel — the owner field that every
// reader writes "for debugging purposes only" (§4), doubling its hot-line
// traffic. The BRAVO kernel patch removes those reader owner writes, so the
// BRAVO-wrapped rwsem model omits the owner line.
type Central struct {
	m        *Machine
	rinLine  LineID
	routLine LineID // equal to rinLine for single-word layouts (rwsem)
	// ownerLine, when valid, is written by every reader (stock rwsem).
	ownerLine    LineID
	hasOwnerLine bool
	blocking     bool

	readersUntil float64 // projected completion of admitted read CSes
	writerUntil  float64 // projected completion of admitted write CSes
}

// NewCentral returns a spinning centralized lock (BA/PF-T flavour):
// separate arrival/departure counter lines, no owner field.
func NewCentral(m *Machine) *Central {
	return &Central{m: m, rinLine: m.NewLine(), routLine: m.NewLine()}
}

// NewBlockingCentral returns a blocking centralized lock (pthread flavour):
// compact single-line state.
func NewBlockingCentral(m *Machine) *Central {
	ln := m.NewLine()
	return &Central{m: m, rinLine: ln, routLine: ln, blocking: true}
}

// NewRWSem returns the kernel rwsem model: single counter line, blocking
// waiters, and (when stockOwnerWrites) the reader-written owner field.
func NewRWSem(m *Machine, stockOwnerWrites bool) *Central {
	ln := m.NewLine()
	c := &Central{m: m, rinLine: ln, routLine: ln, blocking: true}
	if stockOwnerWrites {
		c.ownerLine = m.NewLine()
		c.hasOwnerLine = true
	}
	return c
}

// AcquireRead implements RWLock.
func (c *Central) AcquireRead(th *Thread, t, cs float64) float64 {
	end := c.m.RMW(th.CPU, c.rinLine, t) // arrival increment
	if c.hasOwnerLine {
		end = c.m.Store(th.CPU, c.ownerLine, end) // stock rwsem owner write
	}
	if end < c.writerUntil {
		// Writer present: wait out the write phase.
		if c.blocking {
			end = c.park(end, c.writerUntil)
		} else {
			// Spin until the phase ends, then re-observe the state line.
			end = c.m.Load(th.CPU, c.rinLine, c.writerUntil)
		}
	}
	c.readersUntil = maxf(c.readersUntil, end+cs)
	return end
}

// park models a futex-style wait until target: if the lock frees before the
// park syscall completes, the re-check of the lock word aborts the sleep
// and the waiter just pays the wait; otherwise it pays the full park and
// wake-up latency. Without the re-check, microsecond-scale holds (e.g. a
// BRAVO revocation scan) would trigger self-sustaining wake-up convoys that
// real futex locks do not exhibit.
func (c *Central) park(now, target float64) float64 {
	if target-now < c.m.Cost.BlockNs {
		return target
	}
	return maxf(target+c.m.Cost.WakeNs, now+c.m.Cost.BlockNs)
}

// ReleaseRead implements RWLock.
func (c *Central) ReleaseRead(th *Thread, t float64) float64 {
	end := c.m.RMW(th.CPU, c.routLine, t) // departure increment
	c.readersUntil = maxf(c.readersUntil, end)
	return end
}

// AcquireWrite implements RWLock.
func (c *Central) AcquireWrite(th *Thread, t, cs float64) float64 {
	end := c.m.RMW(th.CPU, c.rinLine, t) // announce presence
	end = c.m.Load(th.CPU, c.routLine, end)
	if c.hasOwnerLine {
		end = c.m.Store(th.CPU, c.ownerLine, end)
	}
	start := maxf(end, c.readersUntil, c.writerUntil)
	if c.blocking && start > end {
		start = c.park(end, start)
	}
	c.writerUntil = start + cs
	return start
}

// ReleaseWrite implements RWLock.
func (c *Central) ReleaseWrite(th *Thread, t float64) float64 {
	end := c.m.RMW(th.CPU, c.rinLine, t)
	c.writerUntil = maxf(c.writerUntil, end)
	return end
}

// PerCPU models the brlock-style lock: one sub-lock line per CPU. Readers
// touch only their own line; writers sweep all of them.
type PerCPU struct {
	m            *Machine
	sub          []LineID
	readersUntil []float64
	writerUntil  float64
}

// NewPerCPU returns a per-CPU lock sized to the machine.
func NewPerCPU(m *Machine) *PerCPU {
	n := m.Top.NumCPUs()
	return &PerCPU{m: m, sub: m.NewLines(n), readersUntil: make([]float64, n)}
}

// AcquireRead implements RWLock.
func (p *PerCPU) AcquireRead(th *Thread, t, cs float64) float64 {
	end := p.m.RMW(th.CPU, p.sub[th.CPU], t)
	if end < p.writerUntil {
		end = p.m.Load(th.CPU, p.sub[th.CPU], p.writerUntil)
	}
	p.readersUntil[th.CPU] = maxf(p.readersUntil[th.CPU], end+cs)
	return end
}

// ReleaseRead implements RWLock.
func (p *PerCPU) ReleaseRead(th *Thread, t float64) float64 {
	end := p.m.RMW(th.CPU, p.sub[th.CPU], t)
	p.readersUntil[th.CPU] = maxf(p.readersUntil[th.CPU], end)
	return end
}

// AcquireWrite implements RWLock: lock every sub-lock in order.
func (p *PerCPU) AcquireWrite(th *Thread, t, cs float64) float64 {
	end := t
	for _, ln := range p.sub {
		end = p.m.RMW(th.CPU, ln, end)
	}
	start := maxf(end, p.writerUntil)
	for _, ru := range p.readersUntil {
		start = maxf(start, ru)
	}
	p.writerUntil = start + cs
	return start
}

// ReleaseWrite implements RWLock: unlock every sub-lock.
func (p *PerCPU) ReleaseWrite(th *Thread, t float64) float64 {
	end := t
	for _, ln := range p.sub {
		end = p.m.RMW(th.CPU, ln, end)
	}
	p.writerUntil = maxf(p.writerUntil, end)
	return end
}

// Cohort models C-RW-WP: per-socket ingress/egress reader indicator lines
// plus a global writer line. Reader arrivals contend only within their
// socket; writers sweep one indicator per socket.
type Cohort struct {
	m            *Machine
	ingress      []LineID
	egress       []LineID
	globalLine   LineID
	readersUntil []float64
	writerUntil  float64
}

// NewCohort returns a cohort lock sized to the machine's sockets.
func NewCohort(m *Machine) *Cohort {
	n := m.Top.Sockets
	return &Cohort{
		m:            m,
		ingress:      m.NewLines(n),
		egress:       m.NewLines(n),
		globalLine:   m.NewLine(),
		readersUntil: make([]float64, n),
	}
}

// AcquireRead implements RWLock.
func (c *Cohort) AcquireRead(th *Thread, t, cs float64) float64 {
	node := c.m.Top.SocketOf(th.CPU)
	end := c.m.RMW(th.CPU, c.ingress[node], t)
	if end < c.writerUntil {
		// Writer preference gate: stand back, then re-arrive.
		end = c.m.RMW(th.CPU, c.egress[node], end) // depart
		end = maxf(end, c.writerUntil)
		end = c.m.RMW(th.CPU, c.ingress[node], end) // re-arrive
	}
	c.readersUntil[node] = maxf(c.readersUntil[node], end+cs)
	return end
}

// ReleaseRead implements RWLock.
func (c *Cohort) ReleaseRead(th *Thread, t float64) float64 {
	node := c.m.Top.SocketOf(th.CPU)
	end := c.m.RMW(th.CPU, c.egress[node], t)
	c.readersUntil[node] = maxf(c.readersUntil[node], end)
	return end
}

// AcquireWrite implements RWLock.
func (c *Cohort) AcquireWrite(th *Thread, t, cs float64) float64 {
	end := c.m.RMW(th.CPU, c.globalLine, t) // cohort mutex
	// Drain every socket's indicator.
	for i := range c.ingress {
		end = c.m.Load(th.CPU, c.ingress[i], end)
		end = c.m.Load(th.CPU, c.egress[i], end)
	}
	start := maxf(end, c.writerUntil)
	for _, ru := range c.readersUntil {
		start = maxf(start, ru)
	}
	c.writerUntil = start + cs
	return start
}

// ReleaseWrite implements RWLock.
func (c *Cohort) ReleaseWrite(th *Thread, t float64) float64 {
	end := c.m.RMW(th.CPU, c.globalLine, t)
	c.writerUntil = maxf(c.writerUntil, end)
	return end
}

// Table is a simulated visible readers table shared by any number of
// simulated BRAVO locks: real hash functions over synthetic lock addresses,
// slot occupancy in virtual time, one cache line per slotsPerLine slots.
type Table struct {
	m     *Machine
	lines []LineID
	slots []simSlot
	size  uint32
}

const slotsPerLine = 8 // 8-byte slots on 64-byte lines

type simSlot struct {
	occupant uint64
	until    float64
}

// NewTable allocates a simulated table with size slots (power of two).
func NewTable(m *Machine, size int) *Table {
	return &Table{
		m:     m,
		lines: m.NewLines((size + slotsPerLine - 1) / slotsPerLine),
		slots: make([]simSlot, size),
		size:  uint32(size),
	}
}

// Bravo models the BRAVO transformation over any simulated underlying lock,
// with the full Listing 1 state machine in virtual time: RBias, fast-path
// publication with real hash-indexed collisions, writer revocation scans
// and the N-multiplier inhibit policy.
type Bravo struct {
	m        *Machine
	under    RWLock
	biasLine LineID
	table    *Table
	lockAddr uint64 // synthetic address for slot hashing

	rbias        bool
	inhibitUntil float64
	n            float64
}

// NewBravo wraps a simulated lock with the BRAVO fast path. Its synthetic
// address (for slot hashing) comes from the machine, so a fresh machine
// always yields the same address sequence — figure points are
// deterministic regardless of what else the process has simulated.
func NewBravo(m *Machine, under RWLock, table *Table) *Bravo {
	return &Bravo{
		m:        m,
		under:    under,
		biasLine: m.NewLine(),
		table:    table,
		lockAddr: m.nextLockAddr(),
		n:        9,
	}
}

// AcquireRead implements RWLock (Listing 1, Reader).
func (b *Bravo) AcquireRead(th *Thread, t, cs float64) float64 {
	t = b.m.Load(th.CPU, b.biasLine, t) // check RBias: shared load, cheap
	if b.rbias {
		idx := hash.Index(uintptr(b.lockAddr), uint64(th.ID)+1, b.table.size)
		s := &b.table.slots[idx]
		if s.until <= t {
			// CAS into the slot: the line is usually in this thread's cache.
			end := b.m.RMW(th.CPU, b.table.lines[idx/slotsPerLine], t)
			end = b.m.Load(th.CPU, b.biasLine, end) // recheck
			s.occupant = b.lockAddr
			s.until = end + cs
			th.tok = uint64(idx) + 1
			return end
		}
		// True collision: divert to the slow path.
	}
	end := b.under.AcquireRead(th, t, cs)
	if !b.rbias && end >= b.inhibitUntil {
		b.rbias = true
		end = b.m.Store(th.CPU, b.biasLine, end)
	}
	th.tok = 0
	return end
}

// ReleaseRead implements RWLock.
func (b *Bravo) ReleaseRead(th *Thread, t float64) float64 {
	if th.tok != 0 {
		idx := th.tok - 1
		th.tok = 0
		end := b.m.Store(th.CPU, b.table.lines[idx/slotsPerLine], t)
		if end > b.table.slots[idx].until {
			b.table.slots[idx].until = end
		}
		return end
	}
	return b.under.ReleaseRead(th, t)
}

// AcquireWrite implements RWLock (Listing 1, Writer).
func (b *Bravo) AcquireWrite(th *Thread, t, cs float64) float64 {
	underCS := cs
	if b.rbias {
		// Arriving readers are blocked during the revocation scan in the
		// default BRAVO; fold the expected scan into the underlying hold.
		underCS += b.m.Cost.ScanNsPerSlot * float64(b.table.size)
	}
	end := b.under.AcquireWrite(th, t, underCS)
	if b.rbias {
		b.rbias = false
		end = b.m.Store(th.CPU, b.biasLine, end)
		start := end
		// Sequential scan, hardware-prefetch assisted.
		end += b.m.Cost.ScanNsPerSlot * float64(b.table.size)
		// Wait for conflicting fast readers to depart.
		for i := range b.table.slots {
			s := &b.table.slots[i]
			if s.occupant == b.lockAddr && s.until > end {
				end = s.until
			}
		}
		b.inhibitUntil = end + (end-start)*b.n
	}
	return end
}

// ReleaseWrite implements RWLock.
func (b *Bravo) ReleaseWrite(th *Thread, t float64) float64 {
	return b.under.ReleaseWrite(th, t)
}

func maxf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
