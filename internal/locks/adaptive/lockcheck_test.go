package adaptive_test

import (
	"testing"

	"github.com/bravolock/bravo/internal/bias"
	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/lockcheck"
	"github.com/bravolock/bravo/internal/locks/adaptive"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
)

// The shared battery runs once per posture: the composite pinned biased
// (readers on the inner BRAVO path) and pinned fair (readers through the
// gate). The flip-while-stormed exclusion test lives in adaptive_test.go.

func mk() rwl.RWLock { return adaptive.New(core.New(new(stdrw.Lock))) }

func mkFair() rwl.RWLock {
	l := adaptive.New(core.New(new(stdrw.Lock)))
	l.Adaptor().ForceMode(bias.ModeFair)
	return l
}

func TestExclusionBiased(t *testing.T) {
	lockcheck.Exclusion(t, mk, 4, 2, 2000)
}

func TestExclusionFair(t *testing.T) {
	lockcheck.Exclusion(t, mkFair, 4, 2, 2000)
}

func TestTryExclusion(t *testing.T) {
	lockcheck.TryExclusion(t, mk, 6, 1500)
}

func TestHandleExclusion(t *testing.T) {
	mkH := func() rwl.HandleRWLock { return adaptive.New(core.New(new(stdrw.Lock))) }
	lockcheck.HandleExclusion(t, mkH, 4, 2, 2000)
}

func TestReadersConcurrentBiased(t *testing.T) {
	lockcheck.ReadersConcurrent(t, mk())
}

func TestReadersConcurrentFair(t *testing.T) {
	lockcheck.ReadersConcurrent(t, mkFair())
}

func TestWriterExcludesReaders(t *testing.T) {
	lockcheck.WriterExcludesReaders(t, mk())
}
