package cluster

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/repl"
	"github.com/bravolock/bravo/internal/rwl"
)

// ErrFenced is returned by every write against a fenced member: the
// primary was deposed, its epoch is over, and nothing it accepts can ever
// become durable history.
var ErrFenced = errors.New("cluster: member is fenced (deposed by failover)")

// Member is one partition's primary: a durable engine, the replication
// server its followers stream from, and the fencing gate.
//
// The gate is the failover proof obligation, so its discipline is strict:
// every write path holds gate.RLock across the engine commit, and Fence
// takes gate.Lock before marking the member fenced. RWMutex writer
// acquisition therefore gives the promotion protocol its key property
// directly: when Fence returns, every in-flight write has either committed
// (and is visible to the LSN cut) or will observe fenced and be rejected —
// there is no third interleaving where a revived old primary commits a
// record after the cut was read.
type Member struct {
	partition int
	epoch     uint64
	dir       string
	engine    *kvs.Sharded
	prim      *repl.Primary
	ln        net.Listener
	hsrv      *http.Server

	gate   sync.RWMutex
	fenced bool

	closeOnce sync.Once
}

// newMember opens a durable engine in dir and starts the partition's
// replication endpoint on a loopback listener. lsnBase, when non-nil, is
// the promotion cut: the engine's per-shard LSNs continue from it.
func newMember(partition int, epoch uint64, dir string, shards int, mk rwl.Factory, policy kvs.SyncPolicy, lsnBase []uint64) (*Member, error) {
	opts := []kvs.Option{kvs.WithDurability(dir, policy)}
	if lsnBase != nil {
		opts = append(opts, kvs.WithLSNBase(lsnBase))
	}
	engine, err := kvs.NewSharded(shards, mk, opts...)
	if err != nil {
		return nil, fmt.Errorf("cluster: partition %d engine: %w", partition, err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		engine.Close()
		return nil, fmt.Errorf("cluster: partition %d repl listener: %w", partition, err)
	}
	m := &Member{
		partition: partition,
		epoch:     epoch,
		dir:       dir,
		engine:    engine,
		prim:      repl.NewPrimary(engine),
		ln:        ln,
	}
	mux := http.NewServeMux()
	m.prim.Register(mux)
	m.hsrv = &http.Server{Handler: mux}
	go m.hsrv.Serve(ln)
	return m, nil
}

// URL returns the member's replication base URL (followers' Config.Primary).
func (m *Member) URL() string { return "http://" + m.ln.Addr().String() }

// Engine returns the member's engine. Reads may go straight at it; writes
// must go through the fenced write methods or they void the failover
// proof.
func (m *Member) Engine() *kvs.Sharded { return m.engine }

// Epoch returns the fencing epoch this member was installed at.
func (m *Member) Epoch() uint64 { return m.epoch }

// Dir returns the member's data directory.
func (m *Member) Dir() string { return m.dir }

// Fenced reports whether the member has been deposed.
func (m *Member) Fenced() bool {
	m.gate.RLock()
	defer m.gate.RUnlock()
	return m.fenced
}

// Fence deposes the member. It blocks until every in-flight write has
// committed; once it returns, no write can ever commit here again, so the
// caller may read the engine's LSNs as the final history of this epoch.
func (m *Member) Fence() {
	m.gate.Lock()
	m.fenced = true
	m.gate.Unlock()
}

// StopServing closes the replication endpoint — the network half of a
// kill. Followers lose their streams mid-frame; the engine stays open so a
// chaos test can keep hammering the corpse and prove the fence holds.
func (m *Member) StopServing() {
	m.hsrv.Close()
}

// Close stops serving and closes the engine (syncing its WAL). Idempotent.
func (m *Member) Close() error {
	var err error
	m.closeOnce.Do(func() {
		m.hsrv.Close()
		err = m.engine.Close()
	})
	return err
}

// write runs fn under the fencing gate: the read side of the RWMutex, held
// across the engine commit, so Fence's writer acquisition is the barrier
// the promotion cut is read behind.
func (m *Member) write(fn func()) error {
	m.gate.RLock()
	defer m.gate.RUnlock()
	if m.fenced {
		return ErrFenced
	}
	fn()
	return nil
}

// Put stores key (with ttl when positive) and returns the commit token's
// local half: the shard and its commit LSN, stamped with this member's
// epoch by the caller.
func (m *Member) Put(key uint64, value []byte, ttl time.Duration) (shard int, lsn uint64, err error) {
	err = m.write(func() {
		if ttl > 0 {
			m.engine.PutTTL(key, value, ttl)
		} else {
			m.engine.Put(key, value)
		}
		shard = m.engine.ShardOf(key)
		lsn = m.engine.ShardLSN(shard)
	})
	return
}

// PutAsync enqueues key on its shard's write queue; no token (the write
// has not applied). The fence gate still guards it: a fenced member's
// queue must not accept work that a later Flush would commit.
func (m *Member) PutAsync(key uint64, value []byte) error {
	return m.write(func() { m.engine.PutAsync(key, value) })
}

// Delete removes key, reporting whether it was present, plus the commit
// token half (the delete is logged even on a miss).
func (m *Member) Delete(key uint64) (ok bool, shard int, lsn uint64, err error) {
	err = m.write(func() {
		ok = m.engine.Delete(key)
		shard = m.engine.ShardOf(key)
		lsn = m.engine.ShardLSN(shard)
	})
	return
}

// MultiPut applies a batch (one engine call: one lock acquisition and one
// group commit per shard touched) and appends each touched shard's commit
// LSN to lsns.
func (m *Member) MultiPut(keys []uint64, values [][]byte, ttl time.Duration, lsns []ShardLSN) ([]ShardLSN, error) {
	err := m.write(func() {
		if ttl > 0 {
			m.engine.MultiPutTTL(keys, values, ttl)
		} else {
			m.engine.MultiPut(keys, values)
		}
		lsns = m.appendCommitLSNs(lsns, keys)
	})
	return lsns, err
}

// MultiDelete removes a batch, reporting the removed count and appending
// commit LSNs like MultiPut.
func (m *Member) MultiDelete(keys []uint64, lsns []ShardLSN) (int, []ShardLSN, error) {
	var removed int
	err := m.write(func() {
		removed = m.engine.MultiDelete(keys)
		lsns = m.appendCommitLSNs(lsns, keys)
	})
	return removed, lsns, err
}

// Cas runs a single-key compare-and-swap under the fencing gate, returning
// the commit token's local half (a non-swapping CAS still commits a
// read-only transaction, so the token is stamped on both outcomes).
func (m *Member) Cas(key uint64, old, new []byte) (swapped bool, shard int, lsn uint64, err error) {
	gerr := m.write(func() {
		swapped, err = m.engine.CompareAndSwap(key, old, new)
		shard = m.engine.ShardOf(key)
		lsn = m.engine.ShardLSN(shard)
	})
	if gerr != nil {
		err = gerr
	}
	return
}

// Txn runs a bounded multi-key transaction under the fencing gate and, on
// commit, appends each declared shard's commit LSN to lsns. Holding the
// gate across the whole two-phase commit keeps the failover property: a
// transaction either commits on every participant shard before Fence
// returns, or not at all.
func (m *Member) Txn(keys []uint64, fn func(*kvs.Tx) error, lsns []ShardLSN) ([]ShardLSN, error) {
	var txErr error
	gerr := m.write(func() {
		txErr = m.engine.Txn(keys, fn)
		if txErr == nil {
			lsns = m.appendCommitLSNs(lsns, keys)
		}
	})
	if gerr != nil {
		return lsns, gerr
	}
	return lsns, txErr
}

// Flush applies the member's queued async writes. Gated: a fenced member
// flushing its queue into the engine would be a post-fence commit.
func (m *Member) Flush() (int, error) {
	var n int
	err := m.write(func() { n = m.engine.Flush() })
	return n, err
}

// Reap runs one bounded TTL sweep. Gated like any other mutation: expiry
// removal logs deletes, and a fenced member's log is closed history.
func (m *Member) Reap(budget int) (int, error) {
	var n int
	err := m.write(func() { n = m.engine.Reap(budget) })
	return n, err
}

// appendCommitLSNs appends one (shard, lsn, epoch) triple per distinct
// shard the keys touch, read after the write applied.
func (m *Member) appendCommitLSNs(dst []ShardLSN, keys []uint64) []ShardLSN {
	base := len(dst)
	for _, k := range keys {
		sh := m.engine.ShardOf(k)
		dup := false
		for _, t := range dst[base:] {
			if int(t.Shard) == sh {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		dst = append(dst, ShardLSN{Shard: uint32(sh), LSN: m.engine.ShardLSN(sh), Epoch: m.epoch})
	}
	return dst
}
