// vmsim: the paper's kernel story (§4, §6.2) in miniature — a page-fault
// storm against an address space whose mmap_sem is either the stock rwsem
// or the BRAVO-augmented rwsem. Page faults take mmap_sem for read; mmap
// and munmap take it for write.
//
//	go run ./examples/vmsim
package main

import (
	"fmt"
	"sync"
	"time"

	"github.com/bravolock/bravo/internal/rwsem"
	"github.com/bravolock/bravo/internal/vm"
)

func faultStorm(as *vm.AddressSpace, workers int, pagesPerWorker int) time.Duration {
	setup := rwsem.NewTask()
	length := uint64(pagesPerWorker) * vm.PageSize
	bases := make([]uint64, workers)
	for i := range bases {
		addr, err := as.Mmap(setup, length, false)
		if err != nil {
			panic(err)
		}
		bases[i] = addr
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			task := rwsem.NewTask()
			// Touch every page: one mmap_sem read acquisition per fault,
			// like will-it-scale's page_fault1.
			if err := as.Touch(task, base, length); err != nil {
				panic(err)
			}
		}(bases[w])
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Note: the munmaps below are write acquisitions and revoke reader
	// bias, so callers interested in the bias state sample it first.
	for _, b := range bases {
		if err := as.Munmap(setup, b); err != nil {
			panic(err)
		}
	}
	return elapsed
}

func main() {
	const workers = 4
	const pages = 20000

	stock := vm.NewAddressSpace(vm.StockSem{S: rwsem.New(rwsem.DefaultConfig())})
	bravo := vm.NewAddressSpace(vm.BravoSem{S: rwsem.NewBravo(rwsem.DefaultConfig())})

	ds := faultStorm(stock, workers, pages)
	db := faultStorm(bravo, workers, pages)
	// Bias was revoked by the teardown munmaps; what matters is that the
	// fault phase ran with it enabled, which the stats below imply (every
	// fault after the first paid no shared-counter update).
	sf, sm, _ := stock.Stats()
	bf, bm, _ := bravo.Stats()
	fmt.Printf("page-fault storm: %d workers × %d pages\n", workers, pages)
	fmt.Printf("  stock rwsem:  %10v  (%d faults, %d mmaps)\n", ds.Round(time.Millisecond), sf, sm)
	fmt.Printf("  BRAVO rwsem:  %10v  (%d faults, %d mmaps)\n", db.Round(time.Millisecond), bf, bm)
	fmt.Printf("  delta:        %9.1f%% (positive favours BRAVO)\n", 100*(float64(ds)-float64(db))/float64(ds))
	fmt.Println()
	fmt.Println("On this host the two are close: BRAVO's win is avoided coherence")
	fmt.Println("traffic, which needs many cores to show. The paper's Figure 9 and")
	fmt.Println("Tables 1-2 shapes: `willitscale -test page_fault1` and `metisbench`,")
	fmt.Println("or the X5-4 simulation via `willitscale -mode sim`.")
}
