package bias

// SlotToken is a fast-path read acquisition token: the visible-readers
// table slot index packed with the slot generation captured at publication
// time. The paper requires "the slot value … passed from the read lock
// operator to the corresponding unlock" (§3); the generation rides along so
// the unlock can prove it is the one matching the publication (see
// Table.ClearOwned) — the always-on unbalanced-unlock guard.
//
// Layout (chosen to compose with the rwl.Token convention): the slot index
// occupies the low 32 bits, the generation the next genBits bits. Wrapping
// locks tag the whole thing with their own discriminator bits (core uses
// bit 63, the adaptive composite bit 62), which the layout leaves free.
type SlotToken uint64

// genBits is the width of the generation tag carried in a token. A stale
// token escapes detection only if the slot is emptied exactly 2^genBits
// times between the two unlocks — far beyond any real double-unlock window,
// and the guard is a misuse detector, not a security boundary.
const genBits = 24

// genMask extracts the comparable generation bits.
const genMask = (1 << genBits) - 1

// makeSlotToken packs a slot index and its captured generation.
func makeSlotToken(idx, gen uint32) SlotToken {
	return SlotToken(uint64(gen&genMask)<<32 | uint64(idx))
}

// Index returns the table slot index.
func (t SlotToken) Index() uint32 { return uint32(t) }

// Gen returns the captured slot generation (low genBits bits significant).
func (t SlotToken) Gen() uint32 { return uint32(t>>32) & genMask }
