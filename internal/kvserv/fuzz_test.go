package kvserv

// Fuzzing the HTTP parsing surface: whatever a client puts in the key
// path, the ttl/async query parameters, the mget key list, or the mput
// JSON body, the server must answer with a 4xx (or succeed) — never panic,
// never 500. CI runs the seed corpus on every test run and a short -fuzz
// exploration.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
)

func fuzzHandler(f *testing.F) http.Handler {
	f.Helper()
	engine, err := kvs.NewSharded(4, func() rwl.RWLock { return core.New(new(stdrw.Lock)) })
	if err != nil {
		f.Fatal(err)
	}
	engine.Put(1, []byte("seeded"))
	return New(engine, Config{ReapInterval: -1}).Handler()
}

// serve runs one request through the route table and fails the test on any
// 5xx: malformed input must be rejected, not exploded on.
func serve(t *testing.T, h http.Handler, req *http.Request) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code >= 500 {
		t.Fatalf("%s %s -> %d: %s", req.Method, req.URL, rec.Code, rec.Body.String())
	}
}

func FuzzServerRequest(f *testing.F) {
	f.Add("1", "1s", "1", "1,2,3", []byte("value"))
	f.Add("notanumber", "bogus", "maybe", "1,,2", []byte(""))
	f.Add("18446744073709551615", "-5ms", "0", ",", []byte("x"))
	f.Add("../../etc/passwd", "1h", "true", "999999999999999999999", bytes.Repeat([]byte("A"), 64))
	f.Add("1%2f2", "10ns", "t", "0x10", []byte{0, 1, 2, 0xFF})
	h := fuzzHandler(f)
	f.Fuzz(func(t *testing.T, key, ttl, async, keysCSV string, body []byte) {
		// The key rides in the path, escaped so the request itself is
		// always well-formed; the handler sees the raw string.
		kv := "/kv/" + url.PathEscape(key)
		q := url.Values{"ttl": {ttl}, "async": {async}}.Encode()
		serve(t, h, httptest.NewRequest(http.MethodGet, kv, nil))
		serve(t, h, httptest.NewRequest(http.MethodPut, kv+"?"+q, bytes.NewReader(body)))
		serve(t, h, httptest.NewRequest(http.MethodDelete, kv, nil))
		serve(t, h, httptest.NewRequest(http.MethodGet, "/mget?keys="+url.QueryEscape(keysCSV), nil))
		serve(t, h, httptest.NewRequest(http.MethodGet, "/stats", nil))
	})
}

func FuzzServerMPut(f *testing.F) {
	f.Add([]byte(`{"entries":[{"key":1,"value":"YQ=="}]}`))
	f.Add([]byte(`{"entries":[{"key":1,"value":"YQ=="}],"ttl":"1s"}`))
	f.Add([]byte(`{"entries":`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"entries":[{"key":-1,"value":42}]}`))
	f.Add([]byte{0xFF, 0xFE, 0x00})
	h := fuzzHandler(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		serve(t, h, httptest.NewRequest(http.MethodPost, "/mput", bytes.NewReader(body)))
		serve(t, h, httptest.NewRequest(http.MethodPost, "/flush", nil))
	})
}
