package self

import (
	"sync"
	"testing"
)

func TestIDStableWithinLoop(t *testing.T) {
	// The identity must be stable across iterations of a hot loop so that a
	// goroutine re-locking the same lock reuses its table slot (§5.2).
	first := ID()
	for i := 0; i < 1000; i++ {
		if got := ID(); got != first {
			t.Fatalf("identity drifted within a loop: %#x != %#x", got, first)
		}
	}
}

func TestIDDispersesAcrossGoroutines(t *testing.T) {
	// Concurrent goroutines live on distinct stacks; their identities must
	// (almost always) differ. We require substantial dispersal, not
	// perfection: the paper tolerates collisions (they are benign).
	// Hold all goroutines alive simultaneously: exited goroutine stacks are
	// pooled and would otherwise be reused, trivially aliasing identities.
	const n = 64
	ids := make([]uint64, n)
	release := make(chan struct{})
	var registered, wg sync.WaitGroup
	registered.Add(n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = ID()
			registered.Done()
			<-release
		}(i)
	}
	registered.Wait()
	close(release)
	wg.Wait()
	distinct := map[uint64]bool{}
	for _, id := range ids {
		distinct[id] = true
	}
	if len(distinct) < n/2 {
		t.Fatalf("only %d distinct identities among %d goroutines", len(distinct), n)
	}
}

func TestNextExplicitIDUnique(t *testing.T) {
	const n = 10000
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		id := NextExplicitID()
		if seen[id] {
			t.Fatalf("duplicate explicit ID %#x", id)
		}
		seen[id] = true
	}
}

func TestNextExplicitIDConcurrentUnique(t *testing.T) {
	const workers, per = 8, 1000
	out := make(chan uint64, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				out <- NextExplicitID()
			}
		}()
	}
	wg.Wait()
	close(out)
	seen := make(map[uint64]bool, workers*per)
	for id := range out {
		if seen[id] {
			t.Fatal("duplicate explicit ID under concurrency")
		}
		seen[id] = true
	}
}
