package wire

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer answers every request over nc with a canned per-op response,
// echoing the request id — enough protocol to exercise the client's
// pipelining and demux without a real engine.
func echoServer(t *testing.T, nc net.Conn) {
	t.Helper()
	dec := NewStreamDecoder(nc, 0)
	var out []byte
	for {
		payload, err := dec.Next()
		if err != nil {
			nc.Close()
			return
		}
		req, ok := DecodeRequest(payload)
		if !ok {
			nc.Close()
			return
		}
		resp := Response{Op: req.Op, ID: req.ID}
		switch req.Op {
		case OpGet:
			if req.Key == 404 {
				resp.Status = StatusNotFound
			} else {
				resp.Value = []byte("value")
			}
		case OpPut:
			resp.LSNs = []ShardLSN{{Shard: uint32(req.Key % 4), LSN: req.Key}}
		case OpMGet:
			resp.Values = make([][]byte, len(req.Keys))
			for i, k := range req.Keys {
				if k != 404 {
					resp.Values[i] = []byte("value")
				}
			}
		case OpMPut:
			resp.Applied = uint32(len(req.Keys))
		case OpDelete:
			if req.Key == 404 {
				resp.Status = StatusNotFound
			} else {
				resp.LSNs = []ShardLSN{{Shard: uint32(req.Key % 4), LSN: req.Key}}
			}
		case OpMDelete:
			for _, k := range req.Keys {
				if k != 404 {
					resp.Applied++
				}
			}
		case OpFlush:
			resp.Applied = 3
		case OpStats:
			resp.Stats = []byte(`{"ok":true}`)
		}
		out = AppendResponse(out[:0], &resp)
		if _, err := nc.Write(out); err != nil {
			nc.Close()
			return
		}
	}
}

func pipeConn(t *testing.T) *Conn {
	t.Helper()
	cNC, sNC := net.Pipe()
	go echoServer(t, sNC)
	c := NewConn(cNC)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestConnDo(t *testing.T) {
	c := pipeConn(t)
	resp, err := c.Do(&Request{Op: OpGet, Key: 1})
	if err != nil || string(resp.Value) != "value" {
		t.Fatalf("GET: %v, %q", err, resp.Value)
	}
	resp, err = c.Do(&Request{Op: OpGet, Key: 404})
	if err != nil || resp.Status != StatusNotFound {
		t.Fatalf("GET miss: %v, status %v", err, resp.Status)
	}
}

// TestConnPipelined issues a window of requests before reading any
// response and checks each Pending resolves to its own reply.
func TestConnPipelined(t *testing.T) {
	c := pipeConn(t)
	const depth = 32
	pendings := make([]*Pending, depth)
	for i := range pendings {
		p, err := c.Start(&Request{Op: OpPut, Key: uint64(i)})
		if err != nil {
			t.Fatalf("Start %d: %v", i, err)
		}
		pendings[i] = p
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i, p := range pendings {
		resp, err := p.Wait()
		if err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
		// The echo server stamps LSN=key: correlation is observable.
		if len(resp.LSNs) != 1 || resp.LSNs[0].LSN != uint64(i) {
			t.Fatalf("response %d carried LSNs %v", i, resp.LSNs)
		}
	}
}

// TestConnConcurrentCallers hammers one connection from many goroutines:
// the demux must route every response to its caller.
func TestConnConcurrentCallers(t *testing.T) {
	c := pipeConn(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := uint64(g*1000 + i)
				resp, err := c.Do(&Request{Op: OpPut, Key: key})
				if err != nil {
					t.Errorf("PUT %d: %v", key, err)
					return
				}
				if len(resp.LSNs) != 1 || resp.LSNs[0].LSN != key {
					t.Errorf("PUT %d answered with %v", key, resp.LSNs)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConnCloseFailsInflight: closing the connection releases every
// waiter with ErrConnClosed rather than hanging.
func TestConnCloseFailsInflight(t *testing.T) {
	cNC, _ := net.Pipe() // server never reads: requests stay in flight
	c := NewConn(cNC)
	p, err := c.Start(&Request{Op: OpGet, Key: 1})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Wait()
		done <- err
	}()
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Wait returned nil after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung after Close")
	}
	if _, err := c.Start(&Request{Op: OpGet, Key: 2}); err == nil {
		t.Fatal("Start succeeded on a closed connection")
	}
}

func TestBatchBuilder(t *testing.T) {
	var b Batch
	b.Add(1, []byte("a"))
	b.Add(2, nil)
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	req := b.MPutRequest(time.Second)
	if req.Op != OpMPut || len(req.Keys) != 2 || req.TTL != time.Second {
		t.Fatalf("MPutRequest = %+v", req)
	}
	if g := b.MGetRequest(7); g.Op != OpMGet || g.MinLSN != 7 {
		t.Fatalf("MGetRequest = %+v", g)
	}
	if d := b.MDeleteRequest(); d.Op != OpMDelete || len(d.Keys) != 2 {
		t.Fatalf("MDeleteRequest = %+v", d)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset left entries")
	}
}

// TestClientPool exercises Acquire/Release reuse and the convenience
// methods against a listener-backed echo server.
func TestClientPool(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go echoServer(t, nc)
		}
	}()

	cl := NewClient(ln.Addr().String(), time.Second)
	defer cl.Close()

	v, ok, err := cl.Get(1, 0)
	if err != nil || !ok || !bytes.Equal(v, []byte("value")) {
		t.Fatalf("Get: %q, %v, %v", v, ok, err)
	}
	if _, ok, err := cl.Get(404, 0); err != nil || ok {
		t.Fatalf("Get miss: ok=%v err=%v", ok, err)
	}
	lsns, err := cl.Put(9, []byte("x"), 0, false)
	if err != nil || len(lsns) != 1 || lsns[0].LSN != 9 {
		t.Fatalf("Put: %v, %v", lsns, err)
	}
	vals, err := cl.MGet([]uint64{1, 404, 2}, 0)
	if err != nil || len(vals) != 3 || vals[1] != nil || vals[0] == nil {
		t.Fatalf("MGet: %v, %v", vals, err)
	}
	var b Batch
	b.Add(3, []byte("c"))
	b.Add(404, []byte("d"))
	if got := b.Keys(); len(got) != 2 || got[0] != 3 {
		t.Fatalf("Batch.Keys = %v", got)
	}
	if _, err := cl.MPut(b.Keys(), [][]byte{{0xC}, {0xD}}, 0); err != nil {
		t.Fatalf("MPut: %v", err)
	}
	if removed, _, err := cl.MDelete(b.Keys()); err != nil || removed != 1 {
		t.Fatalf("MDelete: %d, %v", removed, err)
	}
	if _, ok, err := cl.Delete(5); err != nil || !ok {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	if _, ok, err := cl.Delete(404); err != nil || ok {
		t.Fatalf("Delete miss: ok=%v err=%v", ok, err)
	}
	n, err := cl.Flush()
	if err != nil || n != 3 {
		t.Fatalf("Flush: %d, %v", n, err)
	}
	stats, err := cl.Stats()
	if err != nil || !bytes.Contains(stats, []byte("ok")) {
		t.Fatalf("Stats: %q, %v", stats, err)
	}

	// The pool must have reused a single connection for the serial calls.
	cl.mu.Lock()
	idle := len(cl.idle)
	cl.mu.Unlock()
	if idle != 1 {
		t.Fatalf("idle pool size %d, want 1", idle)
	}
}

// TestStreamHasFrame: after one Next over a two-frame stream the second
// frame is already buffered (HasFrame true, no reader touch); draining it
// empties the buffer (HasFrame false).
func TestStreamHasFrame(t *testing.T) {
	var stream []byte
	stream = AppendRequest(stream, &Request{Op: OpGet, ID: 1, Key: 1})
	stream = AppendRequest(stream, &Request{Op: OpGet, ID: 2, Key: 2})
	dec := NewStreamDecoder(bytes.NewReader(stream), 0)
	if dec.HasFrame() {
		t.Fatal("HasFrame before any read")
	}
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	if !dec.HasFrame() {
		t.Fatal("second frame not buffered after first Next")
	}
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	if dec.HasFrame() {
		t.Fatal("HasFrame after the stream drained")
	}
}
