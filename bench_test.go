// Benchmark entry points: one benchmark per figure and table of the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out.
//
// Figure benches drive the deterministic coherence simulator on the paper's
// topologies and report the headline comparison as custom metrics (who wins
// and by what factor); the cmd/ binaries print the full row-by-row series.
// Table benches and micro/ablation benches run natively.
//
//	go test -bench=. -benchmem
package bravo_test

import (
	"testing"
	"time"

	bravo "github.com/bravolock/bravo"
	"github.com/bravolock/bravo/internal/bench"
	_ "github.com/bravolock/bravo/internal/locks/all"
	"github.com/bravolock/bravo/internal/sim"
)

// --- Lock micro-benchmarks -------------------------------------------------

func lockLineup() map[string]func() bravo.RWLock {
	return map[string]func() bravo.RWLock{
		"ba":            bravo.NewBA,
		"bravo-ba":      func() bravo.RWLock { return bravo.New(bravo.NewBA()) },
		"pf-t":          bravo.NewPFT,
		"pthread":       bravo.NewPthread,
		"bravo-pthread": func() bravo.RWLock { return bravo.New(bravo.NewPthread()) },
		"go-rw":         bravo.NewGoRW,
		"bravo-go":      func() bravo.RWLock { return bravo.New(bravo.NewGoRW()) },
	}
}

func BenchmarkUncontendedRead(b *testing.B) {
	for name, mk := range lockLineup() {
		b.Run(name, func(b *testing.B) {
			l := mk()
			// Warm: engage bias on BRAVO variants.
			tok := l.RLock()
			l.RUnlock(tok)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tok := l.RLock()
				l.RUnlock(tok)
			}
		})
	}
}

func BenchmarkUncontendedWrite(b *testing.B) {
	for name, mk := range lockLineup() {
		b.Run(name, func(b *testing.B) {
			l := mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Lock()
				l.Unlock()
			}
		})
	}
}

func BenchmarkParallelRead(b *testing.B) {
	for name, mk := range lockLineup() {
		b.Run(name, func(b *testing.B) {
			l := mk()
			tok := l.RLock()
			l.RUnlock(tok)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					tok := l.RLock()
					l.RUnlock(tok)
				}
			})
		})
	}
}

// --- Figure benches (simulated paper topologies) ---------------------------

// reportRatio emits a/b as a custom metric.
func reportRatio(b *testing.B, name string, a, c float64) {
	b.Helper()
	if c != 0 {
		b.ReportMetric(a/c, name)
	}
}

func BenchmarkFigure1Interference(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		pts := sim.Figure1Interference([]int{64})
		worst = pts[0].Value
	}
	b.ReportMetric(worst, "frac@64locks")
}

func BenchmarkFigure2Alternator(b *testing.B) {
	var s sim.Series
	for i := 0; i < b.N; i++ {
		s = sim.Figure2Alternator([]int{50})
	}
	reportRatio(b, "bravo/ba@50thr", s["BRAVO-BA"][0].Value, s["BA"][0].Value)
}

func BenchmarkFigure3TestRWLock(b *testing.B) {
	var s sim.Series
	for i := 0; i < b.N; i++ {
		s = sim.Figure3TestRWLock([]int{50})
	}
	reportRatio(b, "bravo/ba@50thr", s["BRAVO-BA"][0].Value, s["BA"][0].Value)
	reportRatio(b, "bravo/percpu@50thr", s["BRAVO-BA"][0].Value, s["Per-CPU"][0].Value)
}

func BenchmarkFigure4RWBench(b *testing.B) {
	for _, sub := range []struct {
		name string
		prob float64
	}{
		{"a_90pct", 0.9}, {"b_50pct", 0.5}, {"c_10pct", 0.1},
		{"d_1pct", 0.01}, {"e_01pct", 0.001}, {"f_001pct", 0.0001},
	} {
		b.Run(sub.name, func(b *testing.B) {
			var s sim.Series
			for i := 0; i < b.N; i++ {
				s = sim.Figure4RWBench([]int{50}, sub.prob)
			}
			reportRatio(b, "bravo/ba@50thr", s["BRAVO-BA"][0].Value, s["BA"][0].Value)
		})
	}
}

func BenchmarkFigure5ReadWhileWriting(b *testing.B) {
	var s sim.Series
	for i := 0; i < b.N; i++ {
		s = sim.Figure5ReadWhileWriting([]int{50})
	}
	reportRatio(b, "bravo/ba@50thr", s["BRAVO-BA"][0].Value, s["BA"][0].Value)
}

func BenchmarkFigure6HashTable(b *testing.B) {
	var s sim.Series
	for i := 0; i < b.N; i++ {
		s = sim.Figure6HashTable([]int{50})
	}
	reportRatio(b, "bravo/ba@50thr", s["BRAVO-BA"][0].Value, s["BA"][0].Value)
}

func BenchmarkFigure7Locktorture(b *testing.B) {
	var reads, writes sim.Series
	for i := 0; i < b.N; i++ {
		reads, writes = sim.Figure7Locktorture([]int{16})
	}
	reportRatio(b, "reads_bravo/stock@16thr", reads["BRAVO"][0].Value, reads["stock"][0].Value)
	reportRatio(b, "writes_bravo/stock@16thr", writes["BRAVO"][0].Value, writes["stock"][0].Value)
}

func BenchmarkFigure8aLocktorture(b *testing.B) {
	var s sim.Series
	for i := 0; i < b.N; i++ {
		s = sim.Figure8Locktorture([]int{72}, 50e6)
	}
	reportRatio(b, "bravo/stock@72thr", s["BRAVO"][0].Value, s["stock"][0].Value)
}

func BenchmarkFigure8bLocktorture(b *testing.B) {
	var s sim.Series
	for i := 0; i < b.N; i++ {
		s = sim.Figure8Locktorture([]int{72}, 5000)
	}
	reportRatio(b, "bravo/stock@72thr", s["BRAVO"][0].Value, s["stock"][0].Value)
}

func BenchmarkFigure9aPageFault1(b *testing.B) {
	var s sim.Series
	for i := 0; i < b.N; i++ {
		s = sim.Figure9WillItScale([]int{72}, "page_fault1")
	}
	reportRatio(b, "bravo/stock@72thr", s["BRAVO"][0].Value, s["stock"][0].Value)
}

func BenchmarkFigure9bPageFault2(b *testing.B) {
	var s sim.Series
	for i := 0; i < b.N; i++ {
		s = sim.Figure9WillItScale([]int{72}, "page_fault2")
	}
	reportRatio(b, "bravo/stock@72thr", s["BRAVO"][0].Value, s["stock"][0].Value)
}

func BenchmarkFigure9cMmap1(b *testing.B) {
	var s sim.Series
	for i := 0; i < b.N; i++ {
		s = sim.Figure9WillItScale([]int{16}, "mmap1")
	}
	reportRatio(b, "bravo/stock@16thr", s["BRAVO"][0].Value, s["stock"][0].Value)
}

func BenchmarkFigure9dMmap2(b *testing.B) {
	var s sim.Series
	for i := 0; i < b.N; i++ {
		s = sim.Figure9WillItScale([]int{16}, "mmap2")
	}
	reportRatio(b, "bravo/stock@16thr", s["BRAVO"][0].Value, s["stock"][0].Value)
}

// --- Table benches (native Metis) ------------------------------------------

func BenchmarkTable1MetisWC(b *testing.B) {
	var stock, brv time.Duration
	for i := 0; i < b.N; i++ {
		stock = bench.MetisWC(bench.Stock, 4, 50000)
		brv = bench.MetisWC(bench.Bravo, 4, 50000)
	}
	reportRatio(b, "stock/bravo_runtime", float64(stock), float64(brv))
}

func BenchmarkTable2MetisWrmem(b *testing.B) {
	var stock, brv time.Duration
	for i := 0; i < b.N; i++ {
		stock = bench.MetisWrmem(bench.Stock, 4, 2000)
		brv = bench.MetisWrmem(bench.Bravo, 4, 2000)
	}
	reportRatio(b, "stock/bravo_runtime", float64(stock), float64(brv))
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkRevocationScan measures the writer's table scan rate; the paper
// reports ≈1.1 ns/slot on its testbed.
func BenchmarkRevocationScan(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = bench.RevocationScanRate(bravo.DefaultTableSize, 20)
	}
	b.ReportMetric(rate, "ns/slot")
}

// BenchmarkAblationTableSize sweeps the table-size vs revocation-cost
// trade-off ("dynamic sizing of the visible readers table" future work).
func BenchmarkAblationTableSize(b *testing.B) {
	for _, size := range []int{256, 1024, 4096, 16384} {
		b.Run(benchName("slots", size), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = bench.RevocationScanRate(size, 20)
			}
			b.ReportMetric(rate, "ns/slot")
			b.ReportMetric(rate*float64(size), "ns/revocation")
		})
	}
}

// BenchmarkAblationInhibitN sweeps the writer slow-down guard N: larger N
// means rarer revocation but slower bias recovery.
func BenchmarkAblationInhibitN(b *testing.B) {
	for _, n := range []int64{1, 3, 9, 99} {
		b.Run(benchName("n", int(n)), func(b *testing.B) {
			l := bravo.New(bravo.NewBA(),
				bravo.WithTable(bravo.NewTable(bravo.DefaultTableSize)),
				bravo.WithInhibitN(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tok := l.RLock()
				l.RUnlock(tok)
				if i%1024 == 0 {
					l.Lock()
					l.Unlock()
				}
			}
		})
	}
}

// BenchmarkAblationPolicy compares the bias-enabling policies on a
// read-dominated loop with occasional writes.
func BenchmarkAblationPolicy(b *testing.B) {
	policies := map[string]bravo.Policy{
		"inhibit9":  bravo.NewInhibitPolicy(9),
		"bernoulli": &policyBernoulli{},
		"always":    policyAlways{},
		"never":     policyNever{},
	}
	for name, p := range policies {
		b.Run(name, func(b *testing.B) {
			l := bravo.New(bravo.NewBA(),
				bravo.WithTable(bravo.NewTable(bravo.DefaultTableSize)),
				bravo.WithPolicy(p))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tok := l.RLock()
				l.RUnlock(tok)
				if i%4096 == 0 {
					l.Lock()
					l.Unlock()
				}
			}
		})
	}
}

// Policy ablation endpoints, via the public Policy interface.
type policyAlways struct{}

func (policyAlways) ShouldEnable() bool        { return true }
func (policyAlways) RevocationDone(_, _ int64) {}

type policyNever struct{}

func (policyNever) ShouldEnable() bool        { return false }
func (policyNever) RevocationDone(_, _ int64) {}

type policyBernoulli struct{ n uint64 }

func (p *policyBernoulli) ShouldEnable() bool {
	p.n++
	return p.n%100 == 0
}
func (p *policyBernoulli) RevocationDone(_, _ int64) {}

// BenchmarkAblationBravo2D compares the flat Listing 1 table against the
// BRAVO-2D sectored layout on the fast path.
func BenchmarkAblationBravo2D(b *testing.B) {
	tables := map[string]*bravo.Table{
		"flat-4096": bravo.NewTable(4096),
		"2d-16x256": bravo.NewTable2D(16, 256),
	}
	for name, tab := range tables {
		b.Run(name, func(b *testing.B) {
			l := bravo.New(bravo.NewBA(), bravo.WithTable(tab))
			tok := l.RLock()
			l.RUnlock(tok)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tok := l.RLock()
				l.RUnlock(tok)
			}
		})
	}
}

// BenchmarkAblation2DRevocation shows the 2D layout's revocation advantage:
// the scan visits one column instead of the whole table.
func BenchmarkAblation2DRevocation(b *testing.B) {
	tables := map[string]*bravo.Table{
		"flat-4096": bravo.NewTable(4096),
		"2d-16x256": bravo.NewTable2D(16, 256),
	}
	for name, tab := range tables {
		b.Run(name, func(b *testing.B) {
			l := bravo.New(bravo.NewBA(), bravo.WithTable(tab),
				bravo.WithPolicy(bravo.NewInhibitPolicy(1)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tok := l.RLock() // may re-enable bias
				l.RUnlock(tok)
				l.Lock() // revokes when biased
				l.Unlock()
			}
		})
	}
}

// BenchmarkAblationProbe2 measures the secondary-probe option under forced
// collisions (two locks sharing a 2-slot table).
func BenchmarkAblationProbe2(b *testing.B) {
	for _, probe2 := range []bool{false, true} {
		name := "single-probe"
		opts := []bravo.Option{}
		if probe2 {
			name = "double-probe"
			opts = append(opts, bravo.WithSecondProbe())
		}
		b.Run(name, func(b *testing.B) {
			tab := bravo.NewTable(2)
			optsA := append([]bravo.Option{bravo.WithTable(tab)}, opts...)
			l1 := bravo.New(bravo.NewBA(), optsA...)
			l2 := bravo.New(bravo.NewBA(), optsA...)
			// Bias both.
			for _, l := range []*bravo.Lock{l1, l2} {
				tok := l.RLock()
				l.RUnlock(tok)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t1 := l1.RLock()
				t2 := l2.RLock()
				l2.RUnlock(t2)
				l1.RUnlock(t1)
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "-" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkLatencyTail compares read-acquisition latency tails with and
// without the §7 revocation mutex, under a periodic revoking writer.
func BenchmarkLatencyTail(b *testing.B) {
	for _, lock := range []string{"bravo-ba", "bravo-ba-revmu"} {
		b.Run(lock, func(b *testing.B) {
			var p99 float64
			for i := 0; i < b.N; i++ {
				h := bench.ReadLatency(lock, 2, 200*time.Microsecond,
					bench.Config{Interval: 50 * time.Millisecond})
				p99 = float64(h.Percentile(99))
			}
			b.ReportMetric(p99, "p99-ns")
		})
	}
}
