package topo

import (
	"testing"
	"testing/quick"
)

func TestReferenceShapes(t *testing.T) {
	if got := X52.NumCPUs(); got != 72 {
		t.Errorf("X5-2 logical CPUs = %d, want 72 (paper §5)", got)
	}
	if got := X54.NumCPUs(); got != 144 {
		t.Errorf("X5-4 logical CPUs = %d, want 144 (paper §6)", got)
	}
	if got := X52.NumCores(); got != 36 {
		t.Errorf("X5-2 cores = %d, want 36", got)
	}
}

func TestSocketPartition(t *testing.T) {
	// Every socket receives the same number of CPUs.
	for _, top := range []Topology{X52, X54, {Sockets: 3, CoresPerSocket: 4, ThreadsPerCore: 1}} {
		counts := make([]int, top.Sockets)
		for cpu := 0; cpu < top.NumCPUs(); cpu++ {
			s := top.SocketOf(cpu)
			if s < 0 || s >= top.Sockets {
				t.Fatalf("SocketOf(%d) = %d out of range", cpu, s)
			}
			counts[s]++
		}
		for s, c := range counts {
			if c != top.CoresPerSocket*top.ThreadsPerCore {
				t.Errorf("socket %d holds %d CPUs, want %d", s, c, top.CoresPerSocket*top.ThreadsPerCore)
			}
		}
	}
}

func TestCoreOfConsistentWithSocket(t *testing.T) {
	top := X52
	for cpu := 0; cpu < top.NumCPUs(); cpu++ {
		core := top.CoreOf(cpu)
		if core < 0 || core >= top.NumCores() {
			t.Fatalf("CoreOf(%d) = %d out of range", cpu, core)
		}
		// SMT siblings share a core.
		sib := cpu ^ 1
		if top.CoreOf(sib) != core {
			t.Errorf("CPUs %d and %d should share core", cpu, sib)
		}
	}
}

func TestCPUOfInRange(t *testing.T) {
	f := func(id uint64) bool {
		c := X52.CPUOf(id)
		return c >= 0 && c < 72
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHostTopology(t *testing.T) {
	h := Host()
	if !h.Valid() {
		t.Fatal("Host() returned invalid topology")
	}
	if h.NumCPUs() < 1 {
		t.Fatal("Host() has no CPUs")
	}
}

func TestValid(t *testing.T) {
	if (Topology{}).Valid() {
		t.Error("zero topology reported valid")
	}
	if !X52.Valid() {
		t.Error("X52 reported invalid")
	}
}
