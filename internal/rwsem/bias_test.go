package rwsem

import (
	"testing"

	"github.com/bravolock/bravo/internal/bias"
)

// Tests for the capabilities rwsem gained by moving onto the shared
// internal/bias engine: deterministic collision behavior, policies, stats,
// the second probe, and unbalanced-release detection.

// collidingTasks returns two tasks whose (task, sem) pairs hash to the same
// slot of tab; with probe2Free, the second task's alternate probe differs.
func collidingTasks(t *testing.T, tab *bias.Table, b *Bravo, probe2Free bool) (*Task, *Task) {
	t.Helper()
	semID := b.Engine().ID()
	t1 := NewTaskWithID(1)
	home := tab.Index(semID, t1.ID)
	for c := uint64(2); c < 1<<20; c++ {
		if tab.Index(semID, c) != home {
			continue
		}
		if probe2Free && tab.Index2(semID, c) == home {
			continue
		}
		return t1, NewTaskWithID(c)
	}
	t.Fatal("no colliding task identity found")
	return nil, nil
}

func TestBravoTwoTasksOneSlotDiverts(t *testing.T) {
	tab := bias.NewTable(64)
	st := &bias.Stats{}
	b := NewBravo(DefaultConfig())
	b.SetTable(tab)
	b.SetPolicy(bias.AlwaysPolicy{})
	b.SetStats(st)
	t1, t2 := collidingTasks(t, tab, b, false)
	b.DownRead(t1) // slow, enables bias
	b.UpRead(t1)
	b.DownRead(t1) // fast: occupies the shared slot
	if t1.Holds() != 1 {
		t.Fatal("first task not on the fast path")
	}
	b.DownRead(t2) // same slot: must divert to the slow path
	if t2.Holds() != 0 {
		t.Fatal("colliding task took the fast path")
	}
	if st.SlowCollision.Load() != 1 {
		t.Fatalf("collision not recorded: %s", st.Snapshot())
	}
	b.UpRead(t2)
	b.UpRead(t1)
	if tab.Occupancy() != 0 {
		t.Fatal("table dirty after collision round trip")
	}
}

func TestBravoTwoTasksOneSlotSecondProbeRescues(t *testing.T) {
	tab := bias.NewTable(64)
	st := &bias.Stats{}
	b := NewBravo(DefaultConfig())
	b.SetTable(tab)
	b.SetPolicy(bias.AlwaysPolicy{})
	b.SetStats(st)
	b.SetSecondProbe()
	t1, t2 := collidingTasks(t, tab, b, true)
	b.DownRead(t1)
	b.UpRead(t1)
	b.DownRead(t1)
	b.DownRead(t2) // collides at home, lands in the alternate slot
	if t2.Holds() != 1 {
		t.Fatalf("second probe did not rescue the colliding task: %s", st.Snapshot())
	}
	alt := tab.Index2(b.Engine().ID(), t2.ID)
	if tab.Load(alt) != b.Engine().ID() {
		t.Fatal("rescued task not in the alternate slot")
	}
	if tab.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2", tab.Occupancy())
	}
	b.UpRead(t2)
	b.UpRead(t1)
	if tab.Occupancy() != 0 {
		t.Fatal("table dirty")
	}
}

func TestBravoSlotCacheAvoidsRehash(t *testing.T) {
	tab := bias.NewTable(bias.DefaultTableSize)
	b := NewBravo(DefaultConfig())
	b.SetTable(tab)
	b.SetPolicy(bias.AlwaysPolicy{})
	task := NewTask()
	b.DownRead(task)
	b.UpRead(task)
	home := tab.Index(b.Engine().ID(), task.ID)
	for i := 0; i < 50; i++ {
		b.DownRead(task)
		if slot, diverted, ok := task.Reader().CachedSlot(b.Engine()); !ok || diverted || slot != home {
			t.Fatalf("iteration %d: cache entry slot=%d diverted=%v ok=%v, want home %d",
				i, slot, diverted, ok, home)
		}
		b.UpRead(task)
	}
}

func TestBravoStatsCountPaths(t *testing.T) {
	st := &bias.Stats{}
	b := NewBravo(DefaultConfig())
	b.SetTable(bias.NewTable(bias.DefaultTableSize))
	b.SetPolicy(bias.AlwaysPolicy{})
	b.SetStats(st)
	task := NewTask()
	b.DownRead(task) // slow: bias disabled
	b.UpRead(task)
	for i := 0; i < 10; i++ {
		b.DownRead(task)
		b.UpRead(task)
	}
	w := NewTask()
	b.DownWrite(w) // revocation
	b.UpWrite(w)
	snap := st.Snapshot()
	if snap.SlowDisabled != 1 || snap.FastRead != 10 || snap.WriteRevoke != 1 {
		t.Fatalf("rwsem stats wrong: %s", snap)
	}
}

func TestBravoCustomPolicyHonored(t *testing.T) {
	b := NewBravo(DefaultConfig())
	b.SetTable(bias.NewTable(64))
	b.SetPolicy(bias.NeverPolicy{})
	task := NewTask()
	for i := 0; i < 20; i++ {
		b.DownRead(task)
		b.UpRead(task)
	}
	if b.Biased() {
		t.Fatal("NeverPolicy rwsem enabled bias")
	}
}

func TestBravoInhibitNTunesNotReplaces(t *testing.T) {
	// SetInhibitN then SetPolicy (and the reverse) must both land N on an
	// inhibit policy and never displace a custom one.
	b1 := NewBravo(DefaultConfig())
	b1.SetInhibitN(7)
	if p, ok := b1.Engine().PolicyInUse().(*bias.InhibitPolicy); !ok || p.N != 7 {
		t.Fatalf("SetInhibitN on default policy: %#v", b1.Engine().PolicyInUse())
	}
	b2 := NewBravo(DefaultConfig())
	b2.SetPolicy(bias.AlwaysPolicy{})
	b2.SetInhibitN(7)
	if _, ok := b2.Engine().PolicyInUse().(bias.AlwaysPolicy); !ok {
		t.Fatalf("SetInhibitN replaced a custom policy: %#v", b2.Engine().PolicyInUse())
	}
}

func TestBravoUnbalancedUpReadPanics(t *testing.T) {
	b := NewBravo(DefaultConfig())
	b.SetTable(bias.NewTable(64))
	task := NewTask()
	b.DownRead(task)
	b.UpRead(task)
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced UpRead did not panic")
		}
	}()
	b.UpRead(task)
}
