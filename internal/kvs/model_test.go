package kvs

// Model-based certification: the sharded engine must be observationally
// equivalent to a single-mutex map. A reference model applies the same
// randomized schedule of operations (Put, PutTTL at its two deterministic
// deadline classes, Delete, MultiPut, MultiDelete, PutAsync+Flush, Get,
// MultiGet, Range, Reap) and the visible states must agree — after every
// read in the sequential phase, and on the final snapshot in the
// concurrent phase, where workers own disjoint key ranges so the final
// state is deterministic per schedule. Run under -race (CI does), the
// concurrent phase is also a data-race certification; the durable variant
// closes, reopens, and demands the recovered store still match the model.
//
// TTL determinism: wall-clock TTLs would make the model racy, so the
// schedules use putDeadline with exactly two classes — born expired
// (deadline -1, invisible immediately) and effectively-never (MaxInt64).

import (
	"bytes"
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"

	"github.com/bravolock/bravo/internal/bias"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/xrand"
)

// errModelAbort is the deliberate abort the transaction arm injects.
var errModelAbort = errors.New("model: deliberate transaction abort")

// refKV is the reference: one flat map of the *visible* state behind one
// mutex, plus the not-yet-applied async queue.
type refKV struct {
	mu      sync.Mutex
	data    map[uint64][]byte
	pendKey []uint64
	pendVal [][]byte
}

func newRefKV() *refKV { return &refKV{data: map[uint64][]byte{}} }

func (r *refKV) put(k uint64, v []byte) {
	r.mu.Lock()
	r.data[k] = append([]byte(nil), v...)
	r.mu.Unlock()
}

func (r *refKV) erase(k uint64) {
	r.mu.Lock()
	delete(r.data, k)
	r.mu.Unlock()
}

func (r *refKV) putAsync(k uint64, v []byte) {
	r.mu.Lock()
	r.pendKey = append(r.pendKey, k)
	r.pendVal = append(r.pendVal, append([]byte(nil), v...))
	r.mu.Unlock()
}

func (r *refKV) flush() {
	r.mu.Lock()
	for i, k := range r.pendKey {
		r.data[k] = r.pendVal[i]
	}
	r.pendKey, r.pendVal = nil, nil
	r.mu.Unlock()
}

func (r *refKV) get(k uint64) ([]byte, bool) {
	r.mu.Lock()
	v, ok := r.data[k]
	r.mu.Unlock()
	return v, ok
}

// compareSnapshot fails the test unless the engine's visible state equals
// the reference's.
func compareSnapshot(t *testing.T, s *Sharded, want map[uint64][]byte, label string) {
	t.Helper()
	snap := s.Snapshot()
	if len(snap) != len(want) {
		t.Fatalf("%s: engine has %d visible keys, model has %d", label, len(snap), len(want))
	}
	for k, wv := range want {
		gv, ok := snap[k]
		if !ok {
			t.Fatalf("%s: model key %d missing from engine", label, k)
		}
		if !bytes.Equal(gv, wv) {
			t.Fatalf("%s: key %d = %x, model says %x", label, k, gv, wv)
		}
	}
}

// optimisticSweep re-reads every model key (plus a probe of absent ones)
// on the quiescent engine and demands exact agreement served entirely by
// the zero-CAS path: every read optimistic, zero retries, zero fallbacks.
// With writers quiescent the seq counters cannot move, so any disagreement
// here is a stale-after-quiescence read — a seq-bracketing bug, not a
// tolerable race — and any retry or fallback means the counter was left
// odd by an unbalanced write section.
func optimisticSweep(t *testing.T, s *Sharded, want map[uint64][]byte, label string) {
	t.Helper()
	before := s.Stats().Total()
	for k, wv := range want {
		gv, ok := s.Get(k)
		if !ok || !bytes.Equal(gv, wv) {
			t.Fatalf("%s: optimistic Get(%d) = %x/%v, model %x", label, k, gv, ok, wv)
		}
	}
	const probes = 64
	for i := uint64(0); i < probes; i++ {
		if _, ok := s.Get(^i); ok { // ^i: far outside every schedule's key space
			t.Fatalf("%s: optimistic Get(%d) hit a key no schedule ever wrote", label, ^i)
		}
	}
	after := s.Stats().Total()
	if n := uint64(len(want) + probes); after.SeqReads-before.SeqReads != n {
		t.Fatalf("%s: only %d of %d sweep reads were served optimistically",
			label, after.SeqReads-before.SeqReads, n)
	}
	if after.SeqRetries != before.SeqRetries || after.SeqFallbacks != before.SeqFallbacks {
		t.Fatalf("%s: quiescent sweep collided (retries +%d, fallbacks +%d): a write section left the counter odd",
			label, after.SeqRetries-before.SeqRetries, after.SeqFallbacks-before.SeqFallbacks)
	}
}

// runSequentialModel drives one goroutine's randomized schedule against
// both the engine and the reference, checking every read.
func runSequentialModel(t *testing.T, s *Sharded, seed uint64, iters int, h *rwl.Reader) *refKV {
	t.Helper()
	// The model tracks the async queue itself, so the engine must not
	// auto-drain behind its back.
	s.SetAsyncBatch(1 << 30)
	ref := newRefKV()
	rng := xrand.NewXorShift64(seed)
	const keyspace = 256
	batch := make([]uint64, 0, 8)
	bvals := make([][]byte, 0, 8)
	for i := 0; i < iters; i++ {
		// Adaptive arm: force a deterministic mid-schedule bias flip every
		// few hundred ops. The mode must be invisible to semantics — any
		// divergence from the reference blames the flip machinery. The rng
		// draw happens only on adaptive engines, so the other arms'
		// schedules are untouched.
		if i%400 == 200 && s.AdaptiveCapable() {
			m := bias.Mode(rng.Intn(3))
			for sh := 0; sh < s.NumShards(); sh++ {
				s.ShardAdaptor(sh).ForceMode(m)
			}
		}
		k := rng.Intn(keyspace)
		switch rng.Intn(23) {
		case 20: // multi-key transaction: staged writes commit or abort atomically
			n := 2 + int(rng.Intn(3))
			batch = batch[:0]
			bvals = bvals[:0]
			for j := 0; j < n; j++ {
				batch = append(batch, rng.Intn(keyspace))
				bvals = append(bvals, EncodeValue(rng.Next()))
			}
			abort := rng.Intn(4) == 0
			err := s.Txn(batch, func(tx *Tx) error {
				for j, bk := range batch {
					// Reads inside the body must see earlier staged writes.
					before, _ := tx.Get(bk)
					tx.Put(bk, bvals[j])
					if after, ok := tx.Get(bk); !ok || !bytes.Equal(after, bvals[j]) {
						t.Fatalf("op %d: staged write invisible to Tx.Get (had %x)", i, before)
					}
				}
				if abort {
					return errModelAbort
				}
				return nil
			})
			if abort != (err != nil) {
				t.Fatalf("op %d: Txn abort=%v returned err=%v", i, abort, err)
			}
			if !abort {
				for j, bk := range batch {
					ref.put(bk, bvals[j]) // duplicate keys: later position wins both sides
				}
			}
		case 21: // CompareAndSwap: the matching arm must swap, the poisoned one must not
			wv, wok := ref.get(k)
			var old []byte
			if wok {
				old = wv
			}
			nv := EncodeValue(rng.Next())
			if rng.Intn(4) == 0 {
				if swapped, err := s.CompareAndSwap(k, []byte("never-stored"), nv); err != nil || swapped {
					t.Fatalf("op %d: mismatched CAS(%d) swapped=%v err=%v", i, k, swapped, err)
				}
			} else {
				if swapped, err := s.CompareAndSwap(k, old, nv); err != nil || !swapped {
					t.Fatalf("op %d: matching CAS(%d) swapped=%v err=%v", i, k, swapped, err)
				}
				ref.put(k, nv)
			}
		case 22: // Update: read-modify-write with no interleaving writer
			nv := EncodeValue(rng.Next())
			wv, wok := ref.get(k)
			if err := s.Update(k, func(cur []byte, ok bool) ([]byte, bool) {
				if ok != wok || (ok && !bytes.Equal(cur, wv)) {
					t.Fatalf("op %d: Update(%d) observed %x/%v, model %x/%v", i, k, cur, ok, wv, wok)
				}
				return nv, true
			}); err != nil {
				t.Fatalf("op %d: Update(%d): %v", i, k, err)
			}
			ref.put(k, nv)
		case 0, 1, 2:
			v := EncodeValue(rng.Next())
			s.Put(k, v)
			ref.put(k, v)
		case 3: // TTL, never-expiring class
			v := EncodeValue(rng.Next())
			s.putDeadline(k, v, math.MaxInt64)
			ref.put(k, v)
		case 4: // TTL, born-expired class: immediately invisible
			s.putDeadline(k, EncodeValue(rng.Next()), -1)
			ref.erase(k)
		case 5, 6:
			s.Delete(k)
			ref.erase(k)
		case 7: // MultiPut, duplicates allowed: later position wins both sides
			n := 1 + int(rng.Intn(8))
			batch, bvals = batch[:0], bvals[:0]
			for j := 0; j < n; j++ {
				batch = append(batch, rng.Intn(keyspace))
				bvals = append(bvals, EncodeValue(rng.Next()))
			}
			s.MultiPut(batch, bvals)
			for j, bk := range batch {
				ref.put(bk, bvals[j])
			}
		case 8: // MultiDelete
			n := 1 + int(rng.Intn(8))
			batch = batch[:0]
			for j := 0; j < n; j++ {
				batch = append(batch, rng.Intn(keyspace))
			}
			s.MultiDelete(batch)
			for _, bk := range batch {
				ref.erase(bk)
			}
		case 9:
			v := EncodeValue(rng.Next())
			s.PutAsync(k, v)
			ref.putAsync(k, v)
		case 10:
			s.Flush()
			ref.flush()
		case 11:
			s.Reap(64) // physical removal only: no visible-state change
		case 12: // full visible-state audit mid-stream
			seen := map[uint64][]byte{}
			s.Range(func(rk uint64, rv []byte) bool {
				seen[rk] = append([]byte(nil), rv...)
				return true
			})
			ref.mu.Lock()
			if len(seen) != len(ref.data) {
				t.Fatalf("op %d: Range saw %d keys, model has %d", i, len(seen), len(ref.data))
			}
			for rk, rv := range ref.data {
				if !bytes.Equal(seen[rk], rv) {
					t.Fatalf("op %d: Range key %d = %x, model %x", i, rk, seen[rk], rv)
				}
			}
			ref.mu.Unlock()
		case 13: // MultiGet vs model, absent keys included
			n := 1 + int(rng.Intn(8))
			batch = batch[:0]
			for j := 0; j < n; j++ {
				batch = append(batch, rng.Intn(2*keyspace))
			}
			got := s.MultiGet(batch)
			for j, bk := range batch {
				wv, wok := ref.get(bk)
				if wok != (got[j] != nil) || (wok && !bytes.Equal(got[j], wv)) {
					t.Fatalf("op %d: MultiGet[%d] key %d = %v, model %v/%v", i, j, bk, got[j], wv, wok)
				}
			}
		default: // Get (through the handle when the substrate supports it)
			var got []byte
			var ok bool
			if h != nil && rng.Intn(2) == 0 {
				got, ok = s.GetH(h, k)
			} else {
				got, ok = s.Get(k)
			}
			wv, wok := ref.get(k)
			if ok != wok || (ok && !bytes.Equal(got, wv)) {
				t.Fatalf("op %d: Get(%d) = %q/%v, model %q/%v", i, k, got, ok, wv, wok)
			}
		}
	}
	s.Flush()
	ref.flush()
	compareSnapshot(t, s, ref.data, "sequential final")
	return ref
}

func TestModelSequentialEquivalence(t *testing.T) {
	iters := 6000
	if testing.Short() {
		iters = 800
	}
	// lockOnly pins the control arm: the same schedule with the optimistic
	// path disabled, so a divergence blames the right read path.
	for _, tc := range []struct {
		name     string
		mk       rwl.Factory
		lockOnly bool
	}{
		{"go-rw", mkStd, false},
		{"bravo-ba", mkBravo, false},
		{"go-rw-lockonly", mkStd, true},
		// The adaptive arm runs the same schedule with deterministic forced
		// mode flips injected mid-schedule (see runSequentialModel).
		{"adaptive-ba", mkAdaptive, false},
		{"adaptive-ba-lockonly", mkAdaptive, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSharded(8, tc.mk)
			if err != nil {
				t.Fatal(err)
			}
			if tc.lockOnly {
				s.SetSeqReadAttempts(0)
			}
			ref := runSequentialModel(t, s, 0xB1A5ED, iters, rwl.NewReader())
			if tc.lockOnly {
				if n := s.Stats().Total().SeqReads; n != 0 {
					t.Fatalf("lock-only arm served %d optimistic reads", n)
				}
				return
			}
			if s.Stats().Total().SeqReads == 0 {
				t.Fatal("schedule never exercised the optimistic read path")
			}
			optimisticSweep(t, s, ref.data, "sequential sweep")
		})
	}
}

// TestModelSequentialEquivalenceDurable runs the same schedule on a
// durable engine, then closes, reopens, and demands the recovered store
// still equal the model — semantics and persistence certified together.
func TestModelSequentialEquivalenceDurable(t *testing.T) {
	iters := 4000
	if testing.Short() {
		iters = 600
	}
	dir := t.TempDir()
	s := openTestKV(t, dir, 8, SyncNone)
	ref := runSequentialModel(t, s, 0xD0_0D, iters, rwl.NewReader())
	optimisticSweep(t, s, ref.data, "durable pre-close sweep")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openTestKV(t, dir, 8, SyncNone)
	defer r.Close()
	compareSnapshot(t, r, ref.data, "recovered")
	// Recovery rebuilds the seq index from the WAL before the engine is
	// shared; the reopened store must serve the model optimistically too.
	optimisticSweep(t, r, ref.data, "recovered sweep")
}

// runConcurrentModel storms the engine with workers that own disjoint key
// ranges (each also running reads, reaps, and the async path with the
// documented flush-before-mixing discipline) plus anonymous readers, then
// compares the deterministic final state. Returns the merged model.
func runConcurrentModel(t *testing.T, s *Sharded, workers, iters int) map[uint64][]byte {
	t.Helper()
	s.SetAsyncBatch(1 << 30) // apply only on Flush: keeps per-key order modelable
	const keysPerWorker = 128
	models := make([]map[uint64][]byte, workers)
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(seed uint64) {
			defer readers.Done()
			h := rwl.NewReader()
			rng := xrand.NewXorShift64(seed)
			total := uint64(workers) * keysPerWorker
			batch := make([]uint64, 4)
			// Bounded, not free-running: on a single-CPU host an unbounded
			// read loop against spinning substrates starves the writers it
			// is supposed to race with.
			for i := 0; i < iters; i++ {
				select {
				case <-done:
					return
				default:
				}
				k := rng.Next() % total
				switch rng.Intn(8) {
				case 0:
					for j := range batch {
						batch[j] = rng.Next() % total
					}
					for _, v := range s.MultiGetH(h, batch) {
						if v != nil && len(v) != 8 {
							t.Errorf("reader: MultiGet returned %d bytes", len(v))
						}
					}
				case 1:
					s.Range(func(_ uint64, v []byte) bool {
						if len(v) != 8 {
							t.Errorf("reader: Range visited %d bytes", len(v))
						}
						return true
					})
				default:
					if v, ok := s.GetH(h, k); ok && len(v) != 8 {
						t.Errorf("reader: Get returned %d bytes", len(v))
					}
				}
			}
		}(uint64(1000 + r))
	}
	// Race-storm variant: on adaptive engines a flipper forces shard modes
	// while the seq readers above and the workers below run. Every reader
	// crosses flip boundaries mid-flight; the model comparison below is the
	// oracle that no flip tears a read or loses a write.
	var flipper sync.WaitGroup
	if s.AdaptiveCapable() {
		flipper.Add(1)
		go func() {
			defer flipper.Done()
			modes := [...]bias.Mode{bias.ModeFair, bias.ModeNeutral, bias.ModeBiased}
			rng := xrand.NewXorShift64(0xF11B)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				sh := int(rng.Intn(uint64(s.NumShards())))
				s.ShardAdaptor(sh).ForceMode(modes[i%len(modes)])
				runtime.Gosched()
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * keysPerWorker
			model := map[uint64][]byte{}
			pending := map[uint64]bool{}
			// flushFor honours the async-mixing contract: before a sync
			// write touches a key with a queued async write, Flush.
			flushFor := func(keys ...uint64) {
				for _, k := range keys {
					if pending[k] {
						s.Flush()
						pending = map[uint64]bool{}
						return
					}
				}
			}
			rng := xrand.NewXorShift64(uint64(w)*0x9E3779B9 + 7)
			batch := make([]uint64, 0, 6)
			bvals := make([][]byte, 0, 6)
			for i := 0; i < iters; i++ {
				k := base + rng.Next()%keysPerWorker
				switch rng.Intn(19) {
				case 16: // multi-key transaction inside the worker's own range
					a := base + rng.Next()%keysPerWorker
					b := base + rng.Next()%keysPerWorker
					flushFor(a, b)
					v1, v2 := EncodeValue(rng.Next()), EncodeValue(rng.Next())
					if err := s.Txn([]uint64{a, b}, func(tx *Tx) error {
						tx.Put(a, v1)
						tx.Put(b, v2)
						return nil
					}); err != nil {
						t.Errorf("worker %d: Txn: %v", w, err)
					}
					// Staged-last wins when a == b, same as the model order.
					model[a] = v1
					model[b] = v2
				case 17: // CAS against the worker's model: must always match
					flushFor(k)
					wv, wok := model[k]
					var old []byte
					if wok {
						old = wv
					}
					nv := EncodeValue(rng.Next())
					if swapped, err := s.CompareAndSwap(k, old, nv); err != nil || !swapped {
						t.Errorf("worker %d: CAS(%d) swapped=%v err=%v", w, k, swapped, err)
					}
					model[k] = nv
				case 18: // Update within the worker's range
					flushFor(k)
					nv := EncodeValue(rng.Next())
					if err := s.Update(k, func([]byte, bool) ([]byte, bool) {
						return nv, true
					}); err != nil {
						t.Errorf("worker %d: Update(%d): %v", w, k, err)
					}
					model[k] = nv
				case 0, 1, 2:
					flushFor(k)
					v := EncodeValue(rng.Next())
					s.Put(k, v)
					model[k] = v
				case 3:
					flushFor(k)
					v := EncodeValue(rng.Next())
					s.putDeadline(k, v, math.MaxInt64)
					model[k] = v
				case 4:
					flushFor(k)
					s.putDeadline(k, EncodeValue(rng.Next()), -1)
					delete(model, k)
				case 5:
					flushFor(k)
					s.Delete(k)
					delete(model, k)
				case 6: // MultiPut within the worker's own range
					n := 1 + int(rng.Intn(6))
					batch, bvals = batch[:0], bvals[:0]
					for j := 0; j < n; j++ {
						batch = append(batch, base+rng.Next()%keysPerWorker)
						bvals = append(bvals, EncodeValue(rng.Next()))
					}
					flushFor(batch...)
					s.MultiPut(batch, bvals)
					for j, bk := range batch {
						model[bk] = bvals[j]
					}
				case 7:
					n := 1 + int(rng.Intn(6))
					batch = batch[:0]
					for j := 0; j < n; j++ {
						batch = append(batch, base+rng.Next()%keysPerWorker)
					}
					flushFor(batch...)
					s.MultiDelete(batch)
					for _, bk := range batch {
						delete(model, bk)
					}
				case 8, 9:
					v := EncodeValue(rng.Next())
					s.PutAsync(k, v)
					model[k] = v
					pending[k] = true
				case 10:
					s.Flush()
					pending = map[uint64]bool{}
				case 11:
					s.Reap(32)
				default:
					// A key with no queued async write is stable: only this
					// worker writes it, and its last sync write has applied.
					if !pending[k] {
						wv, wok := model[k]
						gv, gok := s.Get(k)
						if gok != wok || (gok && !bytes.Equal(gv, wv)) {
							t.Errorf("worker %d: Get(%d) = %q/%v, model %q/%v", w, k, gv, gok, wv, wok)
						}
					}
				}
			}
			models[w] = model
		}(w)
	}
	wg.Wait()
	close(done)
	readers.Wait()
	flipper.Wait()
	s.Flush()
	merged := map[uint64][]byte{}
	for _, m := range models {
		for k, v := range m {
			merged[k] = v
		}
	}
	compareSnapshot(t, s, merged, "concurrent final")
	if s.Stats().Total().SeqReads == 0 {
		t.Error("concurrent schedule never exercised the optimistic read path")
	}
	optimisticSweep(t, s, merged, "concurrent sweep")
	return merged
}

func TestModelConcurrentEquivalence(t *testing.T) {
	iters := 3000
	if testing.Short() {
		iters = 400
	}
	for _, tc := range []struct {
		name string
		mk   rwl.Factory
	}{
		{"go-rw", mkStd},
		{"bravo-ba", mkBravo},
		// Adaptive race storm: a flipper forces shard modes under the full
		// concurrent schedule (see runConcurrentModel).
		{"adaptive-ba", mkAdaptive},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSharded(8, tc.mk)
			if err != nil {
				t.Fatal(err)
			}
			runConcurrentModel(t, s, 4, iters)
		})
	}
}

// TestModelConcurrentEquivalenceDurable is the concurrent storm over a
// live WAL, plus recovery: the reopened store must equal the model the
// concurrent schedule determined.
func TestModelConcurrentEquivalenceDurable(t *testing.T) {
	iters := 1500
	if testing.Short() {
		iters = 300
	}
	dir := t.TempDir()
	s := openTestKV(t, dir, 8, SyncNone)
	merged := runConcurrentModel(t, s, 4, iters)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openTestKV(t, dir, 8, SyncNone)
	defer r.Close()
	compareSnapshot(t, r, merged, "recovered concurrent")
	optimisticSweep(t, r, merged, "recovered concurrent sweep")
}
