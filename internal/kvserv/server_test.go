package kvserv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/bias"
	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/locks/adaptive"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
)

// startServer boots a server over a BRAVO-wrapped engine on a real TCP
// socket and returns its base URL plus a cleanup.
func startServer(t *testing.T, cfg Config) (string, *kvs.Sharded) {
	t.Helper()
	engine, err := kvs.NewSharded(8, func() rwl.RWLock { return core.New(new(stdrw.Lock)) })
	if err != nil {
		t.Fatal(err)
	}
	return startServerWith(t, engine, cfg), engine
}

// startServerWith serves a caller-built engine (volatile or durable).
func startServerWith(t *testing.T, engine *kvs.Sharded, cfg Config) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(engine, cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != http.ErrServerClosed {
			t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
		}
	})
	return "http://" + l.Addr().String()
}

func do(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestServerEndToEnd drives the full GET/PUT/DELETE/MGET/MPUT/stats surface
// over a real TCP socket.
func TestServerEndToEnd(t *testing.T) {
	base, _ := startServer(t, Config{ReapInterval: -1})

	// PUT then GET round-trips raw bytes.
	resp, _ := do(t, http.MethodPut, base+"/kv/42", []byte("hello"))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	resp, body := do(t, http.MethodGet, base+"/kv/42", nil)
	if resp.StatusCode != http.StatusOK || string(body) != "hello" {
		t.Fatalf("GET = %d %q, want 200 \"hello\"", resp.StatusCode, body)
	}

	// Misses and malformed keys.
	if resp, _ := do(t, http.MethodGet, base+"/kv/7", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET miss status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodGet, base+"/kv/notanumber", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET bad key status = %d, want 400", resp.StatusCode)
	}

	// DELETE removes; a second DELETE misses.
	if resp, _ := do(t, http.MethodDelete, base+"/kv/42", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodDelete, base+"/kv/42", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE status = %d, want 404", resp.StatusCode)
	}

	// MPUT applies a batch; MGET reads it back parallel to the keys.
	mput, _ := json.Marshal(mputRequest{Entries: []mputEntry{
		{Key: 1, Value: []byte("a")},
		{Key: 2, Value: []byte("b")},
	}})
	resp, body = do(t, http.MethodPost, base+"/mput", mput)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("MPUT status = %d: %s", resp.StatusCode, body)
	}
	var applied map[string]int
	if err := json.Unmarshal(body, &applied); err != nil || applied["applied"] != 2 {
		t.Fatalf("MPUT response %s (err %v), want applied=2", body, err)
	}
	resp, body = do(t, http.MethodGet, base+"/mget?keys=1,2,3", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("MGET status = %d", resp.StatusCode)
	}
	var got mgetResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("MGET body %s: %v", body, err)
	}
	if len(got.Values) != 3 || string(got.Values[0]) != "a" || string(got.Values[1]) != "b" || got.Values[2] != nil {
		t.Fatalf("MGET values = %q", got.Values)
	}

	// Stats reflect the traffic and the handle-capable engine.
	resp, body = do(t, http.MethodGet, base+"/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("stats body: %v", err)
	}
	if st.NumShards != 8 || !st.HandleCapable {
		t.Fatalf("stats = shards %d handle %v, want 8/true", st.NumShards, st.HandleCapable)
	}
	if st.Total.Gets == 0 || st.Total.Puts == 0 {
		t.Fatalf("stats counted gets=%d puts=%d, want traffic", st.Total.Gets, st.Total.Puts)
	}
	// The optimistic read posture surfaces: a positive attempt budget, and
	// with this test's uncontended reads the seq path served them (each
	// served read is classified exactly once across the three counters).
	if st.SeqReadAttempts <= 0 {
		t.Fatalf("seq_read_attempts = %d, want the engine default", st.SeqReadAttempts)
	}
	if st.Total.SeqReads == 0 {
		t.Fatalf("seq_reads = 0 with %d gets; optimistic path never served", st.Total.Gets)
	}
}

// TestServerReusesConnectionHandle checks the per-connection reader handle:
// sequential requests on one keep-alive connection reuse one pinned
// identity, and concurrent reads through it stay correct.
func TestServerReusesConnectionHandle(t *testing.T) {
	base, engine := startServer(t, Config{ReapInterval: -1})
	engine.Put(5, []byte("v"))
	// One client with keep-alive: many GETs ride one connection → one
	// handle. This is a correctness check (responses stay right when the
	// slot cache is hot), the perf claim lives in the bench.
	for i := 0; i < 50; i++ {
		resp, body := do(t, http.MethodGet, base+"/kv/5", nil)
		if resp.StatusCode != http.StatusOK || string(body) != "v" {
			t.Fatalf("GET #%d = %d %q", i, resp.StatusCode, body)
		}
	}
}

func TestServerTTLAndReaper(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: wall-clock TTL e2e (sleeps across a real deadline)")
	}
	base, engine := startServer(t, Config{ReapInterval: 10 * time.Millisecond, ReapBudget: 64})

	// A TTL'd PUT is visible before the deadline, gone after it. The
	// margin is generous so scheduler pauses on loaded CI hosts cannot
	// expire the key before the "before" read.
	resp, _ := do(t, http.MethodPut, base+"/kv/1?ttl=500ms", []byte("ephemeral"))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT ttl status = %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodGet, base+"/kv/1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET before deadline = %d, want 200", resp.StatusCode)
	}
	time.Sleep(700 * time.Millisecond)
	if resp, _ := do(t, http.MethodGet, base+"/kv/1", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after deadline = %d, want 404", resp.StatusCode)
	}
	// The background reaper physically removes the residue (Len counts
	// resident entries, visible or not).
	deadline := time.Now().Add(2 * time.Second)
	for engine.Len() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := engine.Len(); n != 0 {
		t.Fatalf("reaper left %d resident entries", n)
	}
	if resp, _ := do(t, http.MethodPut, base+"/kv/2?ttl=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT bad ttl status = %d, want 400", resp.StatusCode)
	}
}

func TestServerAsyncPutAndFlush(t *testing.T) {
	base, _ := startServer(t, Config{ReapInterval: -1})
	resp, _ := do(t, http.MethodPut, base+"/kv/9?async=1", []byte("queued"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async PUT status = %d, want 202", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodGet, base+"/kv/9", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before flush = %d, want 404", resp.StatusCode)
	}
	resp, body := do(t, http.MethodPost, base+"/flush", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "\"flushed\":1") {
		t.Fatalf("flush = %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, http.MethodGet, base+"/kv/9", nil)
	if resp.StatusCode != http.StatusOK || string(body) != "queued" {
		t.Fatalf("GET after flush = %d %q", resp.StatusCode, body)
	}
	if resp, _ := do(t, http.MethodPut, base+"/kv/9?async=1&ttl=1s", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("async+ttl status = %d, want 400", resp.StatusCode)
	}
	// async=0 means synchronous: immediately visible, 204 not 202.
	resp, _ = do(t, http.MethodPut, base+"/kv/10?async=0", []byte("sync"))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("async=0 PUT status = %d, want 204", resp.StatusCode)
	}
	if resp, body := do(t, http.MethodGet, base+"/kv/10", nil); resp.StatusCode != http.StatusOK || string(body) != "sync" {
		t.Fatalf("GET after async=0 PUT = %d %q, want immediate visibility", resp.StatusCode, body)
	}
	if resp, _ := do(t, http.MethodPut, base+"/kv/11?async=maybe", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("async=maybe status = %d, want 400", resp.StatusCode)
	}
}

func TestServerMPutTTL(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: wall-clock TTL e2e (sleeps across a real deadline)")
	}
	base, _ := startServer(t, Config{ReapInterval: -1})
	mput, _ := json.Marshal(mputRequest{
		Entries: []mputEntry{{Key: 1, Value: []byte("x")}},
		TTL:     "500ms", // generous: see TestServerTTLAndReaper
	})
	if resp, body := do(t, http.MethodPost, base+"/mput", mput); resp.StatusCode != http.StatusOK {
		t.Fatalf("MPUT ttl = %d %s", resp.StatusCode, body)
	}
	if resp, _ := do(t, http.MethodGet, base+"/kv/1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET before batch deadline != 200")
	}
	time.Sleep(700 * time.Millisecond)
	if resp, _ := do(t, http.MethodGet, base+"/kv/1", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after batch deadline != 404")
	}
}

// TestServerDurableCheckpointAndRestart serves a durable engine over real
// TCP: writes (sync, batched, and async-then-flushed) survive a server
// stop and a fresh server over the same directory; /checkpoint truncates
// the logs; /stats reports the durability posture.
func TestServerDurableCheckpointAndRestart(t *testing.T) {
	dir := t.TempDir()
	mk := func() rwl.RWLock { return core.New(new(stdrw.Lock)) }
	engine, err := kvs.OpenSharded(dir, 8, mk, kvs.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	base := startServerWith(t, engine, Config{ReapInterval: -1})

	if resp, _ := do(t, http.MethodPut, base+"/kv/1", []byte("durable")); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	mput, _ := json.Marshal(mputRequest{Entries: []mputEntry{
		{Key: 2, Value: []byte("batched")},
	}})
	if resp, body := do(t, http.MethodPost, base+"/mput", mput); resp.StatusCode != http.StatusOK {
		t.Fatalf("MPUT = %d %s", resp.StatusCode, body)
	}
	// An async write accepted with 202 must survive too: Server.Close
	// flushes the queue (and the flush is logged) before the engine closes.
	if resp, _ := do(t, http.MethodPut, base+"/kv/3?async=1", []byte("queued")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async PUT status = %d", resp.StatusCode)
	}

	// Checkpoint over HTTP: logs truncate, stats count it.
	resp, body := do(t, http.MethodPost, base+"/checkpoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint = %d %s", resp.StatusCode, body)
	}
	var st statsResponse
	_, body = do(t, http.MethodGet, base+"/stats", nil)
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Durable || st.SyncPolicy != "none" || st.WALError != "" {
		t.Fatalf("stats durability = %+v", st)
	}
	if st.Total.Checkpoints != uint64(st.NumShards) {
		t.Fatalf("Checkpoints = %d, want %d", st.Total.Checkpoints, st.NumShards)
	}

	if resp, _ := do(t, http.MethodPut, base+"/kv/4?ttl=1h", []byte("ttl")); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT ttl status = %d", resp.StatusCode)
	}

	// "Restart": close the engine (which drains the async queue into the
	// log, then syncs and closes it) and open a fresh engine + server over
	// the same directory. The first server's deferred Close is harmless —
	// its engine is already closed and quiet.
	if err := engine.Close(); err != nil {
		t.Fatalf("engine.Close: %v", err)
	}
	e2, err := kvs.OpenSharded(dir, 8, mk, kvs.SyncNone)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(func() { e2.Close() })
	base2 := startServerWith(t, e2, Config{ReapInterval: -1})
	for key, want := range map[string]string{"1": "durable", "2": "batched", "3": "queued", "4": "ttl"} {
		resp, body := do(t, http.MethodGet, base2+"/kv/"+key, nil)
		if resp.StatusCode != http.StatusOK || string(body) != want {
			t.Fatalf("restarted GET /kv/%s = %d %q, want %q", key, resp.StatusCode, body, want)
		}
	}
	if resp, _ := do(t, http.MethodPost, base2+"/checkpoint", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint on restarted server = %d", resp.StatusCode)
	}
}

// TestServerCheckpointVolatileConflicts: /checkpoint without -data-dir is
// an operator error, answered 409.
func TestServerCheckpointVolatile(t *testing.T) {
	base, _ := startServer(t, Config{ReapInterval: -1})
	if resp, _ := do(t, http.MethodPost, base+"/checkpoint", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("volatile checkpoint = %d, want 409", resp.StatusCode)
	}
	_, body := do(t, http.MethodGet, base+"/stats", nil)
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Durable || st.SyncPolicy != "" {
		t.Fatalf("volatile stats claim durability: %+v", st)
	}
}

// TestServerStatsAdaptiveBias: an adaptive engine's per-shard bias mode and
// flip counts flow through GET /stats untouched (the same rows back the wire
// STATS verb), and a non-adaptive engine omits the fields entirely.
func TestServerStatsAdaptiveBias(t *testing.T) {
	engine, err := kvs.NewSharded(4, func() rwl.RWLock {
		return adaptive.New(core.New(new(stdrw.Lock)))
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.ShardAdaptor(2).ForceMode(bias.ModeFair)
	base := startServerWith(t, engine, Config{ReapInterval: -1})

	_, body := do(t, http.MethodGet, base+"/stats", nil)
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("stats shards = %d, want 4", len(st.Shards))
	}
	for i, row := range st.Shards {
		want := "biased"
		if i == 2 {
			want = "fair"
		}
		if row.BiasMode != want {
			t.Fatalf("shard %d bias_mode = %q, want %q", i, row.BiasMode, want)
		}
	}
	if st.Total.BiasMode != "mixed" || st.Total.BiasFlips != 1 {
		t.Fatalf("total bias = %q/%d, want mixed/1", st.Total.BiasMode, st.Total.BiasFlips)
	}
	if !bytes.Contains(body, []byte(`"bias_mode":"fair"`)) {
		t.Fatalf("raw /stats body lacks bias_mode field: %s", body)
	}

	// Non-adaptive engines never emit the fields (omitempty + no adaptor).
	base2, _ := startServer(t, Config{ReapInterval: -1})
	_, body2 := do(t, http.MethodGet, base2+"/stats", nil)
	if bytes.Contains(body2, []byte("bias_mode")) {
		t.Fatalf("non-adaptive /stats leaked bias_mode: %s", body2)
	}
}

func ExampleServer() {
	engine, _ := kvs.NewSharded(4, func() rwl.RWLock { return core.New(new(stdrw.Lock)) })
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	srv := New(engine, Config{})
	go srv.Serve(l)
	defer srv.Close()

	base := "http://" + l.Addr().String()
	req, _ := http.NewRequest(http.MethodPut, base+"/kv/7", strings.NewReader("paper"))
	resp, _ := http.DefaultClient.Do(req)
	resp.Body.Close()
	resp, _ = http.Get(base + "/kv/7")
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println(string(b))
	// Output: paper
}
