// Package seq implements a sequence lock (seqlock [9, 23, 29]), the
// optimistic-invisible-reader design the paper surveys as related work (§2).
//
// Readers write nothing — they validate a sequence number before and after
// the critical section and retry on interference — so they generate zero
// coherence traffic on synchronization state. The price is that readers can
// observe inconsistent intermediate state mid-section and must be written to
// tolerate it; the read section here is therefore expressed as a retryable
// function. This is the zero-coherence endpoint against which BRAVO's
// pessimistic fast path can be compared in the ablation benches.
//
// The package exports two layers:
//
//   - Count is the bare sequence counter — odd while a writer is inside —
//     with no writer serialization of its own. It is the piece lifted into
//     the KV engine's optimistic read path, where the shard's existing
//     BRAVO write lock already serializes writers and Count only has to
//     version their critical sections.
//   - Lock composes Count with a mutex into the classic standalone seqlock.
package seq

import (
	"sync"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/spin"
)

// Count is a bare sequence counter: even when quiescent, odd while a write
// section is open. It does NOT serialize writers — callers must bracket
// WriteBegin/WriteEnd inside whatever exclusion already covers the data
// (a mutex here in Lock, the shard write lock in the KV engine). The zero
// value is quiescent.
type Count struct {
	seq atomic.Uint64
}

// WriteBegin opens a write section, making the sequence odd. The caller must
// already hold writer exclusion over the protected data.
func (c *Count) WriteBegin() { c.seq.Add(1) }

// WriteEnd closes a write section, making the sequence even.
func (c *Count) WriteEnd() { c.seq.Add(1) }

// TryBegin samples the sequence without waiting. ok is false when a write
// section is open (sequence odd), in which case the caller should back off
// or fall back rather than spin.
func (c *Count) TryBegin() (s uint64, ok bool) {
	s = c.seq.Load()
	return s, s&1 == 0
}

// Begin waits for any in-progress write to finish and returns the sequence
// to validate against.
func (c *Count) Begin() uint64 {
	var b spin.Backoff
	for {
		if s, ok := c.TryBegin(); ok {
			return s
		}
		b.Once()
	}
}

// Retry reports whether a read section that started at sequence s overlapped
// a write and must be retried (or abandoned for a pessimistic fallback).
func (c *Count) Retry(s uint64) bool { return c.seq.Load() != s }

// Lock is a sequence lock. The zero value is unlocked.
type Lock struct {
	cnt Count
	mu  sync.Mutex // serializes writers
}

// WriteLock begins a write section, making the sequence odd.
func (l *Lock) WriteLock() {
	l.mu.Lock()
	l.cnt.WriteBegin()
}

// WriteUnlock ends a write section, making the sequence even.
func (l *Lock) WriteUnlock() {
	l.cnt.WriteEnd()
	l.mu.Unlock()
}

// ReadBegin waits for any in-progress write to finish and returns the
// sequence to validate against.
func (l *Lock) ReadBegin() uint64 { return l.cnt.Begin() }

// ReadRetry reports whether a read section that started at sequence s
// overlapped a write and must be retried.
func (l *Lock) ReadRetry(s uint64) bool { return l.cnt.Retry(s) }

// RunRead executes f as an optimistic read section, retrying until it runs
// without writer interference. f may observe torn state while executing and
// must be side-effect free until its final successful run's return.
func (l *Lock) RunRead(f func()) {
	for {
		s := l.ReadBegin()
		f()
		if !l.ReadRetry(s) {
			return
		}
	}
}
