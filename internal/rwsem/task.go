package rwsem

import (
	"github.com/bravolock/bravo/internal/bias"
	"github.com/bravolock/bravo/internal/self"
)

// maxHeld bounds the number of BRAVO-rwsem read acquisitions a task can hold
// simultaneously on the fast path — the capacity of the task's reader
// handle. Kernel tasks rarely hold more than one or two rwsems in read mode
// (mmap_sem dominates); excess acquisitions simply divert to the slow path.
const maxHeld = bias.ReaderSlots

// Task models the kernel's `current` task struct as far as rwsem is
// concerned: a stable identity (the task-struct pointer the paper hashes)
// plus a reader handle carrying the per-task record of fast-path read
// acquisitions and the per-semaphore slot cache. The record preserves the
// paper's same-task release assumption (§4) and resolves the hash-collision
// ambiguity a bare recomputed-slot check would have — the same role the
// POSIX per-thread held-lock lists play in §3; the cache means a task
// re-reading the same semaphore pays one CAS, not a rehash.
//
// A Task is confined to one goroutine; its methods are not safe for
// concurrent use.
type Task struct {
	// ID is the task identity hashed with the semaphore identity to choose
	// a visible-readers-table slot, and passed to the underlying rwsem.
	ID uint64
	// r is the task's reader handle (held-slot record + slot cache).
	r bias.Reader
}

// NewTask returns a task with a fresh stable identity.
func NewTask() *Task {
	return NewTaskWithID(self.NextExplicitID())
}

// NewTaskWithID returns a task with an explicit identity, for callers that
// need the (task, semaphore) → slot mapping to be reproducible
// (benchmark harnesses, collision tests).
func NewTaskWithID(id uint64) *Task {
	return &Task{ID: id, r: bias.MakeReader(id)}
}

// Reader exposes the task's reader handle. Diagnostic.
func (t *Task) Reader() *bias.Reader { return &t.r }

// Holds reports how many fast-path read acquisitions are outstanding.
func (t *Task) Holds() int { return t.r.Held() }
