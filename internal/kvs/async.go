package kvs

import "sync"

// The asynchronous write queue: PutAsync enqueues a write on its shard's
// queue instead of taking the shard's write lock, and queued writes are
// applied in enqueue order as one combined batch — by whichever PutAsync
// call fills the queue to the coalescing threshold, or by Flush. Writers
// therefore coalesce (one write-lock acquisition, and for BRAVO shards one
// bias revocation, per batch instead of per key) while the BRAVO read fast
// path stays biased between batch applications instead of being revoked on
// every key.
//
// The trade is ordering relaxation on queued keys: a queued write is
// invisible to every read path until its batch is applied, and a
// synchronous Put/MultiPut/Delete to the same key issued between the
// enqueue and the batch application is overwritten (or resurrected) when
// the batch lands — the queue knows nothing of writes that bypassed it.
// Callers that mix paths on one key, or need read-your-writes, call Flush
// between them; keys written only synchronously are never affected.

// DefaultAsyncBatch is the per-shard queue depth at which PutAsync applies
// the queued batch inline, when SetAsyncBatch has not overridden it.
const DefaultAsyncBatch = 64

// writeQueue is one shard's pending asynchronous writes. mu guards only
// the enqueue/detach of the slices — never held across the batch
// application, so enqueuers are not blocked behind the shard write lock.
// apply serializes detach+apply as one step, so batches reach the shard in
// detach order and a key's newer queued write can never be overwritten by
// an older one racing through a second applier.
type writeQueue struct {
	mu    sync.Mutex
	keys  []uint64
	vals  [][]byte
	apply sync.Mutex
}

// SetAsyncBatch sets the per-shard coalescing threshold for PutAsync
// (n <= 0 restores DefaultAsyncBatch). Safe to call at any time.
func (s *Sharded) SetAsyncBatch(n int) {
	s.asyncN.Store(int64(n))
}

func (s *Sharded) asyncBatch() int {
	if n := s.asyncN.Load(); n > 0 {
		return int(n)
	}
	return DefaultAsyncBatch
}

// PutAsync enqueues key→value on the key's shard write queue. The value is
// copied at enqueue, so the caller may reuse its buffer immediately. The
// write becomes visible when its batch is applied: inline by the PutAsync
// call that fills the queue to the coalescing threshold (SetAsyncBatch),
// or by Flush. Per-shard enqueue order is preserved among queued writes,
// but a synchronous write to the same key issued while this one sits
// queued is clobbered when the batch applies — Flush first when mixing
// paths on one key (see the package note above).
func (s *Sharded) PutAsync(key uint64, value []byte) {
	sh := s.shardOf(key)
	sh.q.mu.Lock()
	sh.q.keys = append(sh.q.keys, key)
	sh.q.vals = append(sh.q.vals, append([]byte(nil), value...))
	full := len(sh.q.keys) >= s.asyncBatch()
	sh.q.mu.Unlock()
	sh.ops.asyncPuts.Add(1)
	if full {
		sh.drainQueue()
	}
}

// drainQueue detaches and applies the shard's queued writes under the
// queue's apply mutex, so concurrent drains cannot reorder batches.
func (sh *kvShard) drainQueue() int {
	sh.q.apply.Lock()
	sh.q.mu.Lock()
	keys, vals := sh.q.keys, sh.q.vals
	sh.q.keys, sh.q.vals = nil, nil
	sh.q.mu.Unlock()
	if len(keys) > 0 {
		sh.applyBatch(keys, vals)
	}
	sh.q.apply.Unlock()
	return len(keys)
}

// Flush applies every queued asynchronous write, shard by shard, and
// returns the number of writes applied. After Flush returns, every
// PutAsync that returned before Flush was called is visible to reads.
func (s *Sharded) Flush() int {
	total := 0
	for i := range s.shards {
		total += s.shards[i].drainQueue()
	}
	return total
}

// applyBatch applies one detached same-shard batch in order under a single
// write-lock acquisition. On durable engines the whole batch is one WAL
// record and (under SyncAlways) one fsync — group commit: a queued write
// becomes durable when its batch applies, not when PutAsync returns.
func (sh *kvShard) applyBatch(keys []uint64, vals [][]byte) {
	w := sh.wal
	w.lock()
	if w != nil {
		w.begin(len(keys))
		for i, k := range keys {
			w.addPut(k, vals[i], 0)
		}
		w.commit(len(keys))
	}
	sh.lock.Lock()
	sh.ops.puts.Add(uint64(len(keys))) // total before rare, as in Put
	for i, k := range keys {
		sh.putCounted(k, vals[i], 0)
	}
	sh.lock.Unlock()
	w.unlock()
	sh.ops.wbatches.Add(1)
	sh.ops.wbatchKeys.Add(uint64(len(keys)))
}
