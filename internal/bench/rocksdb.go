package bench

import (
	"sync/atomic"

	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/xrand"
)

// ReadWhileWriting runs the §5.5 rocksdb readwhilewriting profile natively:
// a memtable with one GetLock stripe (the paper's
// --inplace_update_num_locks=1), one writer doing in-place updates
// back-to-back, and T reader threads doing Get calls on random keys among
// --num=10000. Returns aggregate reader ops completed.
func ReadWhileWriting(lockName string, readers int, cfg Config) float64 {
	const keys = 10000
	mk, ok := rwl.Lookup(lockName)
	if !ok {
		panic("bench: unknown lock " + lockName)
	}
	return cfg.Median(func() float64 {
		m, err := kvs.NewMemtable(1, mk)
		if err != nil {
			panic(err)
		}
		for k := uint64(0); k < keys; k++ {
			m.Put(k, kvs.EncodeValue(k))
		}
		var readerOps atomic.Uint64
		RunWorkers(readers+1, cfg.Interval, func(id int, stop *atomic.Bool) uint64 {
			rng := xrand.NewXorShift64(uint64(id) + 17)
			var ops uint64
			if id == readers { // the writer
				for i := uint64(0); !stop.Load(); i++ {
					m.Put(rng.Intn(keys), kvs.EncodeValue(i))
				}
				return 0
			}
			buf := make([]byte, 0, 8) // reused: keep the measured loop allocation-free
			for !stop.Load() {
				buf, _ = m.GetInto(rng.Intn(keys), buf)
				ops++
			}
			readerOps.Add(ops)
			return ops
		})
		return float64(readerOps.Load())
	})
}

// HashTableBench runs the §5.6 rocksdb hash_table_bench profile natively:
// a pre-populated hash cache under one lock, one inserter, one eraser, and
// T lookup threads, all back-to-back. Returns aggregate ops (reads, erases,
// insertions) completed.
func HashTableBench(lockName string, readers int, cfg Config) float64 {
	const span = 1 << 16
	mk, ok := rwl.Lookup(lockName)
	if !ok {
		panic("bench: unknown lock " + lockName)
	}
	return cfg.Median(func() float64 {
		c := kvs.NewHashCache(mk)
		c.Populate(span/2, 64)
		total := RunWorkers(readers+2, cfg.Interval, func(id int, stop *atomic.Bool) uint64 {
			rng := xrand.NewXorShift64(uint64(id) + 71)
			var ops uint64
			switch id {
			case readers: // inserter
				for !stop.Load() {
					c.Insert(&kvs.CacheEntry{Key: rng.Intn(span)})
					ops++
				}
			case readers + 1: // eraser
				for !stop.Load() {
					c.Erase(rng.Intn(span))
					ops++
				}
			default:
				for !stop.Load() {
					c.Lookup(rng.Intn(span))
					ops++
				}
			}
			return ops
		})
		return float64(total)
	})
}
