package rwl_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/locks/pfq"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
)

func TestWrapOptimisticPreservesHandleCapability(t *testing.T) {
	plain := rwl.WrapOptimistic(new(stdrw.Lock))
	if _, ok := plain.(rwl.HandleRWLock); ok {
		t.Fatal("wrapping a plain lock must not invent a handle read path")
	}
	bravo := rwl.WrapOptimistic(core.New(new(pfq.Lock)))
	h, ok := bravo.(rwl.HandleRWLock)
	if !ok {
		t.Fatal("wrapping a handle-capable lock must keep RLockH/RUnlockH")
	}
	r := rwl.NewReader()
	tok := h.RLockH(r)
	h.RUnlockH(r, tok)
}

func TestOptimisticBracketsWriteSections(t *testing.T) {
	o := rwl.WrapOptimistic(new(stdrw.Lock))
	s0, ok := o.ReadAttempt()
	if !ok {
		t.Fatal("ReadAttempt failed with no writer present")
	}
	if !o.ReadValidate(s0) {
		t.Fatal("ReadValidate failed with no intervening write")
	}
	o.Lock()
	if _, ok := o.ReadAttempt(); ok {
		t.Fatal("ReadAttempt succeeded inside a write section")
	}
	o.Unlock()
	if o.ReadValidate(s0) {
		t.Fatal("ReadValidate passed across a completed write section")
	}
	s1, ok := o.ReadAttempt()
	if !ok || s1 == s0 {
		t.Fatalf("post-write ReadAttempt = (%d, %v), want fresh even sequence", s1, ok)
	}
}

func TestOptimisticReadLockPassthrough(t *testing.T) {
	o := rwl.WrapOptimistic(new(stdrw.Lock))
	tok := o.RLock()
	// A pessimistic read must not disturb the write-section counter.
	if s, ok := o.ReadAttempt(); !ok {
		t.Fatalf("RLock perturbed the sequence counter (seq %d)", s)
	}
	o.RUnlock(tok)
}

// TestOptimisticConsistentPairs is the seqlock property on the wrapper:
// writers under the wrapped Lock keep two words in lockstep, and a validated
// optimistic section never observes them out of sync, while unvalidated
// sections are discarded and retried against the pessimistic path.
func TestOptimisticConsistentPairs(t *testing.T) {
	o := rwl.WrapOptimistic(core.New(new(pfq.Lock)))
	var a, b atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			o.Lock()
			a.Store(i)
			b.Store(i)
			o.Unlock()
		}
	}()
	var optimistic, fallback int
	for i := 0; i < 5000; i++ {
		var x, y uint64
		validated := false
		for attempt := 0; attempt < 3; attempt++ {
			s, ok := o.ReadAttempt()
			if !ok {
				continue
			}
			x, y = a.Load(), b.Load()
			if o.ReadValidate(s) {
				validated = true
				break
			}
		}
		if validated {
			optimistic++
		} else {
			tok := o.RLock()
			x, y = a.Load(), b.Load()
			o.RUnlock(tok)
			fallback++
		}
		if x != y {
			t.Fatalf("read %d observed torn pair (%d, %d) (optimistic=%v)", i, x, y, validated)
		}
	}
	close(stop)
	wg.Wait()
	if optimistic == 0 {
		t.Error("no read ever completed optimistically under a non-saturating writer")
	}
	t.Logf("optimistic=%d fallback=%d", optimistic, fallback)
}
