package bravo_test

import (
	"fmt"
	"net"
	"os"
	"time"

	bravo "github.com/bravolock/bravo"
	"github.com/bravolock/bravo/internal/kvserv"
)

// ExampleNew shows the transformation itself: wrap any reader-writer lock
// and read through the one-CAS fast path.
func ExampleNew() {
	l := bravo.New(bravo.NewBA()) // BRAVO over a Brandenburg–Anderson lock
	tok := l.RLock()              // fast path: one CAS, no shared counter
	fmt.Println("reading")
	l.RUnlock(tok) // the token carries the table slot

	l.Lock() // writers unchanged (revoke bias if set)
	fmt.Println("writing")
	l.Unlock()
	// Output:
	// reading
	// writing
}

// ExampleNewReader pins a reader handle: the steady-state read is a single
// CAS at a cached slot — no identity derivation, no hashing — and
// unbalanced unlocks panic instead of corrupting lock state.
func ExampleNewReader() {
	l := bravo.New(bravo.NewGoRW())
	h := bravo.NewReader() // per goroutine (or per request/connection)
	for i := 0; i < 3; i++ {
		tok := l.RLockH(h) // steady state: cached-slot CAS
		l.RUnlockH(h, tok) // must pair H with H, same handle
	}
	fmt.Println("three handle reads")
	// Output: three handle reads
}

// ExampleNewShardedKV builds the serving engine: a BRAVO lock per shard,
// all shards sharing the process-wide visible-readers table.
func ExampleNewShardedKV() {
	kv, err := bravo.NewShardedKV(8, func() bravo.RWLock { return bravo.New(bravo.NewBA()) })
	if err != nil {
		panic(err)
	}
	kv.Put(1, []byte("one"))
	kv.Put(2, []byte("two"))

	h := bravo.NewReader() // one identity per request, not per shard
	v, ok := kv.GetH(h, 1)
	fmt.Println(string(v), ok)
	_, ok = kv.Get(99)
	fmt.Println(ok)
	fmt.Println(kv.Len())
	// Output:
	// one true
	// false
	// 2
}

// ExampleShardedKV_MultiPut batches writes: keys are grouped by shard and
// each shard's group is applied under a single write-lock acquisition, so
// the lock traffic — and, on BRAVO shards, the bias revocation — is
// amortized across the group.
func ExampleShardedKV_MultiPut() {
	kv, _ := bravo.NewShardedKV(4, func() bravo.RWLock { return bravo.New(bravo.NewBA()) })
	keys := []uint64{10, 20, 30}
	vals := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	kv.MultiPut(keys, vals)

	for _, v := range kv.MultiGet([]uint64{10, 20, 30, 40}) {
		fmt.Printf("%q\n", v) // the nil entry marks the absent key
	}
	fmt.Println("removed:", kv.MultiDelete(keys))
	// Output:
	// "a"
	// "b"
	// "c"
	// ""
	// removed: 3
}

// ExampleShardedKV_PutTTL attaches an expiry: the key is visible until its
// deadline (inclusive), then reads miss — lazily at first, physically once
// Reap gets to it. Deadlines here are an hour out and non-positive, so
// the example is deterministic under any scheduler.
func ExampleShardedKV_PutTTL() {
	kv, _ := bravo.NewShardedKV(4, func() bravo.RWLock { return bravo.New(bravo.NewBA()) })
	kv.PutTTL(7, []byte("durable"), time.Hour)
	_, ok := kv.Get(7)
	fmt.Println("an hour before its deadline:", ok)

	kv.PutTTL(8, []byte("ephemeral"), 0) // non-positive TTL: born expired
	_, ok = kv.Get(8)
	fmt.Println("past its deadline:", ok)
	fmt.Println("reaped:", kv.Reap(0)) // incremental removal, default budget
	// Output:
	// an hour before its deadline: true
	// past its deadline: false
	// reaped: 1
}

// ExampleOpenShardedKV makes the engine durable: writes append to a
// per-shard write-ahead log before applying (batches are one record and,
// under SyncAlways, one fsync — group commit), Checkpoint snapshots the
// shards and truncates the logs, and reopening the directory recovers
// everything, surviving the "crash" between the two opens here.
func ExampleOpenShardedKV() {
	dir, _ := os.MkdirTemp("", "bravo-kv-*")
	defer os.RemoveAll(dir)
	mk := func() bravo.RWLock { return bravo.New(bravo.NewBA()) }

	kv, _ := bravo.OpenShardedKV(dir, 4, mk, bravo.SyncAlways)
	kv.Put(1, []byte("survives"))
	kv.MultiPut([]uint64{2, 3}, [][]byte{[]byte("group"), []byte("commit")})
	kv.Close() // drain async queues, sync and close the logs

	kv, _ = bravo.OpenShardedKV(dir, 4, mk, bravo.SyncAlways) // recover
	defer kv.Close()
	v, _ := kv.Get(1)
	fmt.Println(string(v), kv.Len())
	// Output: survives 3
}

// ExampleOpenFollowerKV replicates the engine: a durable primary served
// over HTTP streams its LSN-stamped write-ahead log, and a follower
// applies it into an in-memory replica serving the same biased read fast
// paths. The primary's commit LSN is the read-your-writes token: a
// follower read gated on it never sees an older state.
func ExampleOpenFollowerKV() {
	dir, _ := os.MkdirTemp("", "bravo-repl-*")
	defer os.RemoveAll(dir)
	mk := func() bravo.RWLock { return bravo.New(bravo.NewBA()) }

	primary, _ := bravo.OpenShardedKV(dir, 4, mk, bravo.SyncNone)
	defer primary.Close()
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	srv := kvserv.New(primary, kvserv.Config{}) // durable ⇒ serves /repl/stream
	go srv.Serve(l)
	defer srv.Close()

	primary.Put(1, []byte("replicated"))
	shard := primary.ShardOf(1)
	token := primary.ShardLSN(shard) // commit LSN: the read-your-writes token

	follower, _ := bravo.OpenFollowerKV("http://"+l.Addr().String(), mk)
	defer follower.Close()
	follower.WaitMinLSN(shard, token, 5*time.Second)
	v, _ := follower.Engine().Get(1)
	fmt.Println(string(v))
	// Output: replicated
}

// ExampleShardedKV_PutAsync coalesces writers through the per-shard write
// queue: queued writes become visible when a batch fills or on Flush.
func ExampleShardedKV_PutAsync() {
	kv, _ := bravo.NewShardedKV(4, func() bravo.RWLock { return bravo.New(bravo.NewBA()) })
	kv.PutAsync(1, []byte("queued"))
	_, ok := kv.Get(1)
	fmt.Println("before flush:", ok)
	fmt.Println("flushed:", kv.Flush())
	v, _ := kv.Get(1)
	fmt.Println("after flush:", string(v))
	// Output:
	// before flush: false
	// flushed: 1
	// after flush: queued
}
