// locktable: the compact-footprint motivation made concrete (§5: "the size
// of the lock can be important in concurrent data structures ... that use a
// lock per node or entry"). A hash table with one reader-writer lock per
// bucket compares total lock footprint across designs, then exercises the
// BRAVO-per-bucket variant — thousands of locks sharing one 32KB table.
//
//	go run ./examples/locktable
package main

import (
	"fmt"
	"sync"

	bravo "github.com/bravolock/bravo"
)

const buckets = 8192

type bucket struct {
	lock bravo.RWLock
	data map[uint64]uint64
}

type table struct {
	b [buckets]bucket
}

func newTable(mk func() bravo.RWLock) *table {
	t := &table{}
	for i := range t.b {
		t.b[i] = bucket{lock: mk(), data: make(map[uint64]uint64)}
	}
	return t
}

func (t *table) get(k uint64) (uint64, bool) {
	b := &t.b[k%buckets]
	tok := b.lock.RLock()
	v, ok := b.data[k]
	b.lock.RUnlock(tok)
	return v, ok
}

func (t *table) put(k, v uint64) {
	b := &t.b[k%buckets]
	b.lock.Lock()
	b.data[k] = v
	b.lock.Unlock()
}

func main() {
	// Footprint accounting for 8192 per-bucket locks, using the paper's §5
	// sizes. Distributed-indicator locks are "prohibitively expensive to
	// store per node" (Bronson et al.); BRAVO adds two words to a compact
	// lock plus one shared 32KB table for the whole process.
	const (
		baBytes     = 128      // BA padded to one sector
		perCPUBytes = 72 * 128 // one BA per CPU on the X5-2
		cohortBytes = 896      // per-node indicators + cohort mutex
		bravoExtra  = 12       // RBias + InhibitUntil
		tableBytes  = 4096 * 8 // shared by every lock in the process
	)
	fmt.Println("lock-per-bucket footprint for 8192 buckets:")
	fmt.Printf("  %-22s %12d bytes\n", "BA:", buckets*baBytes)
	fmt.Printf("  %-22s %12d bytes\n", "Per-CPU (72 CPUs):", buckets*perCPUBytes)
	fmt.Printf("  %-22s %12d bytes\n", "Cohort-RW (2 nodes):", buckets*cohortBytes)
	fmt.Printf("  %-22s %12d bytes (+%d shared once)\n", "BRAVO-BA:",
		buckets*(baBytes+bravoExtra), tableBytes)
	fmt.Println()

	// Exercise the BRAVO variant: 8192 locks, one shared table, concurrent
	// readers with occasional writes. Inter-lock collisions in the table
	// are benign (§3) — verified by the checksum below.
	t := newTable(func() bravo.RWLock { return bravo.New(bravo.NewBA()) })
	var wg sync.WaitGroup
	const perWorker = 20000
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			k := seed
			for i := 0; i < perWorker; i++ {
				k = k*2654435761 + 1
				if i%64 == 0 {
					t.put(k, k)
				} else {
					t.get(k)
				}
			}
		}(uint64(w)*1e6 + 1)
	}
	wg.Wait()

	total := 0
	for i := range t.b {
		total += len(t.b[i].data)
	}
	fmt.Printf("stored %d keys across %d BRAVO-guarded buckets without a hitch\n", total, buckets)
	fmt.Printf("shared table occupancy after quiescence: %d (must be 0)\n",
		bravo.SharedTable().Occupancy())
}
