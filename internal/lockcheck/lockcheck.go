// Package lockcheck provides reusable invariant checkers for reader-writer
// locks. Every lock package's tests drive the same storms and admission
// probes through these helpers, so a new lock implementation inherits the
// full correctness battery by writing a handful of one-line tests.
package lockcheck

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/xrand"
)

// Exclusion runs a concurrent storm of readers and writers against a fresh
// lock from mk and fails the test if a writer ever overlaps another writer
// or any reader. The occupancy word packs active writers in the low byte and
// active readers above it, so violations are detected at the moment of
// admission.
func Exclusion(t *testing.T, mk func() rwl.RWLock, readers, writers, iters int) {
	t.Helper()
	l := mk()
	var state atomic.Int64 // readers·256 + writers
	var violations atomic.Int64
	var wg sync.WaitGroup

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.NewXorShift64(seed)
			for i := 0; i < iters; i++ {
				tok := l.RLock()
				if state.Add(256)&0xff != 0 {
					violations.Add(1)
				}
				if rng.Intn(8) == 0 {
					runtime.Gosched()
				}
				state.Add(-256)
				l.RUnlock(tok)
			}
		}(uint64(r + 1))
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.NewXorShift64(seed)
			for i := 0; i < iters; i++ {
				l.Lock()
				if state.Add(1) != 1 {
					violations.Add(1)
				}
				if rng.Intn(4) == 0 {
					runtime.Gosched()
				}
				state.Add(-1)
				l.Unlock()
			}
		}(uint64(1000 + w))
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("mutual exclusion violated %d times", v)
	}
	if s := state.Load(); s != 0 {
		t.Fatalf("lock accounting left residue %d", s)
	}
}

// TryExclusion storms TryRLock/TryLock alongside blocking acquisitions.
func TryExclusion(t *testing.T, mk func() rwl.RWLock, workers, iters int) {
	t.Helper()
	l := mk()
	tl, ok := l.(rwl.TryRWLock)
	if !ok {
		t.Fatalf("lock does not implement TryRWLock")
	}
	var state atomic.Int64
	var violations atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.NewXorShift64(seed)
			for i := 0; i < iters; i++ {
				switch rng.Intn(4) {
				case 0:
					if tok, ok := tl.TryRLock(); ok {
						if state.Add(256)&0xff != 0 {
							violations.Add(1)
						}
						state.Add(-256)
						l.RUnlock(tok)
					}
				case 1:
					if tl.TryLock() {
						if state.Add(1) != 1 {
							violations.Add(1)
						}
						state.Add(-1)
						l.Unlock()
					}
				case 2:
					tok := l.RLock()
					if state.Add(256)&0xff != 0 {
						violations.Add(1)
					}
					state.Add(-256)
					l.RUnlock(tok)
				default:
					l.Lock()
					if state.Add(1) != 1 {
						violations.Add(1)
					}
					state.Add(-1)
					l.Unlock()
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("try-lock mutual exclusion violated %d times", v)
	}
}

// HandleExclusion is Exclusion through the handle-accepting read paths:
// every reader goroutine owns a private rwl.Reader and the storm verifies
// that cached-slot fast paths never compromise mutual exclusion.
func HandleExclusion(t *testing.T, mk func() rwl.HandleRWLock, readers, writers, iters int) {
	t.Helper()
	l := mk()
	var state atomic.Int64 // readers·256 + writers
	var violations atomic.Int64
	var wg sync.WaitGroup

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := rwl.NewReader()
			rng := xrand.NewXorShift64(seed)
			for i := 0; i < iters; i++ {
				tok := l.RLockH(h)
				if state.Add(256)&0xff != 0 {
					violations.Add(1)
				}
				if rng.Intn(8) == 0 {
					runtime.Gosched()
				}
				state.Add(-256)
				l.RUnlockH(h, tok)
			}
		}(uint64(r + 1))
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.NewXorShift64(seed)
			for i := 0; i < iters; i++ {
				l.Lock()
				if state.Add(1) != 1 {
					violations.Add(1)
				}
				if rng.Intn(4) == 0 {
					runtime.Gosched()
				}
				state.Add(-1)
				l.Unlock()
			}
		}(uint64(1000 + w))
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("handle-path mutual exclusion violated %d times", v)
	}
	if s := state.Load(); s != 0 {
		t.Fatalf("lock accounting left residue %d", s)
	}
}

// UnbalancedRUnlock certifies that a handle-lock's held-slot record catches
// read-unlock misuse: a double RUnlockH of one acquisition, and an RUnlockH
// with no acquisition at all, must both panic instead of silently
// corrupting lock state.
func UnbalancedRUnlock(t *testing.T, l rwl.HandleRWLock) {
	t.Helper()
	h := rwl.NewReader()
	// Warm so at least one legitimate acquire/release pair has happened on
	// both paths bias may choose.
	tok := l.RLockH(h)
	l.RUnlockH(h, tok)
	tok = l.RLockH(h)
	l.RUnlockH(h, tok)
	if !panics(func() { l.RUnlockH(h, tok) }) {
		t.Fatal("double RUnlockH did not panic")
	}
	if !panics(func() { l.RUnlockH(rwl.NewReader(), tok) }) {
		t.Fatal("RUnlockH without RLockH did not panic")
	}
	// The lock must remain usable after rejected misuse.
	tok = l.RLockH(h)
	l.RUnlockH(h, tok)
	l.Lock()
	l.Unlock()
}

// UnbalancedAnonymousRUnlock certifies the always-on fast-path guard on the
// token-passing anonymous read paths: a double RUnlock of a fast-path
// token, a stale token replayed after its slot was republished (the ABA
// case handle bookkeeping cannot see), and a fast token handed to a
// different lock must all panic deterministically. The check lives in the
// visible-readers table itself (per-slot publication generations), so it
// holds in production builds, not only under handle-based test harnesses.
// mk must build locks whose fast path can engage (bias enables on read).
func UnbalancedAnonymousRUnlock(t *testing.T, mk func() rwl.RWLock) {
	t.Helper()
	// Fast-path tokens are tagged with bit 63 (the rwl.Token convention).
	const fastBit = rwl.Token(1) << 63
	fastTok := func(l rwl.RWLock) rwl.Token {
		t.Helper()
		for i := 0; i < 1000; i++ {
			tok := l.RLock()
			if tok&fastBit != 0 {
				return tok
			}
			l.RUnlock(tok)
		}
		t.Fatal("lock never granted a fast-path read (bias not enabling)")
		return 0
	}
	l, l2 := mk(), mk()

	// Double unlock: the first release bumps the slot generation, so the
	// second can never match.
	tok := fastTok(l)
	l.RUnlock(tok)
	if !panics(func() { l.RUnlock(tok) }) {
		t.Fatal("double anonymous RUnlock of a fast token did not panic")
	}

	// Stale replay under republication: a fresh read from the same
	// goroutine re-occupies the same slot with the same lock identity; only
	// the generation distinguishes the live token from the stale one.
	live := fastTok(l)
	if !panics(func() { l.RUnlock(tok) }) {
		t.Fatal("stale token unlock did not panic while its slot was republished")
	}
	l.RUnlock(live)

	// Cross-lock: a fast token from one lock released on another.
	tok = fastTok(l)
	if !panics(func() { l2.RUnlock(tok) }) {
		t.Fatal("fast token released on the wrong lock did not panic")
	}
	l.RUnlock(tok)

	// The lock must remain usable after rejected misuse.
	tok = l.RLock()
	l.RUnlock(tok)
	l.Lock()
	l.Unlock()
}

// panics reports whether fn panicked.
func panics(fn func()) (p bool) {
	defer func() {
		if recover() != nil {
			p = true
		}
	}()
	fn()
	return false
}

// ReadersConcurrent asserts that the lock admits at least two simultaneous
// readers (work conservation of read-read parallelism).
func ReadersConcurrent(t *testing.T, l rwl.RWLock) {
	t.Helper()
	t1 := l.RLock()
	done := make(chan rwl.Token)
	go func() { done <- l.RLock() }()
	select {
	case t2 := <-done:
		l.RUnlock(t2)
	case <-time.After(5 * time.Second):
		t.Fatal("second reader was not admitted alongside an active reader")
	}
	l.RUnlock(t1)
}

// WriterExcludesReaders asserts that while a writer holds the lock, a reader
// is not admitted, and is admitted after the writer departs.
func WriterExcludesReaders(t *testing.T, l rwl.RWLock) {
	t.Helper()
	l.Lock()
	var got atomic.Bool
	go func() {
		tok := l.RLock()
		got.Store(true)
		l.RUnlock(tok)
	}()
	Never(t, got.Load, 50*time.Millisecond, "reader admitted while writer held the lock")
	l.Unlock()
	Eventually(t, got.Load, "reader not admitted after writer departed")
}

// WaitingWriterBlocksReaders probes writer-preference / phase-fair
// admission: with a reader active and a writer waiting, a newly arriving
// reader must not be admitted until the writer has had its turn.
func WaitingWriterBlocksReaders(t *testing.T, l rwl.RWLock) {
	t.Helper()
	r1 := l.RLock()
	var wGot, r2Got atomic.Bool
	wRelease := make(chan struct{})
	go func() {
		l.Lock()
		wGot.Store(true)
		<-wRelease
		l.Unlock()
	}()
	// Wait until the writer has announced itself (it cannot be admitted
	// while r1 is active).
	waitWriterVisible(t, l)
	go func() {
		tok := l.RLock()
		r2Got.Store(true)
		l.RUnlock(tok)
	}()
	Never(t, r2Got.Load, 50*time.Millisecond, "reader barged past a waiting writer")
	l.RUnlock(r1)
	Eventually(t, wGot.Load, "writer not admitted after readers drained")
	close(wRelease)
	Eventually(t, r2Got.Load, "blocked reader not admitted after writer departed")
}

// WaitingWriterStarvedByReaders probes strong reader preference: with a
// reader active and a writer waiting, a newly arriving reader IS admitted
// ahead of the writer.
func WaitingWriterStarvedByReaders(t *testing.T, l rwl.RWLock) {
	t.Helper()
	r1 := l.RLock()
	var wGot, r2Got atomic.Bool
	wRelease := make(chan struct{})
	go func() {
		l.Lock()
		wGot.Store(true)
		<-wRelease
		l.Unlock()
	}()
	waitWriterWaiting(t, 100*time.Millisecond)
	go func() {
		tok := l.RLock()
		r2Got.Store(true)
		l.RUnlock(tok)
	}()
	Eventually(t, r2Got.Load, "reader-preference lock blocked a reader behind a waiting writer")
	if wGot.Load() {
		t.Fatal("writer was admitted while a reader held the lock")
	}
	l.RUnlock(r1)
	Eventually(t, wGot.Load, "writer not admitted after readers drained")
	close(wRelease)
}

// waitWriterVisible waits until the lock reports a writer present, via the
// WriterPresent diagnostic when available, otherwise a grace sleep.
func waitWriterVisible(t *testing.T, l rwl.RWLock) {
	t.Helper()
	if wp, ok := l.(interface{ WriterPresent() bool }); ok {
		Eventually(t, wp.WriterPresent, "writer never became visible")
		return
	}
	waitWriterWaiting(t, 100*time.Millisecond)
}

func waitWriterWaiting(t *testing.T, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// Eventually polls cond (yielding) and fails the test if it does not hold
// within a generous deadline.
func Eventually(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		runtime.Gosched()
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal(msg)
}

// Never asserts cond stays false for the duration.
func Never(t *testing.T, cond func() bool, d time.Duration, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			t.Fatal(msg)
		}
		runtime.Gosched()
		time.Sleep(100 * time.Microsecond)
	}
}
