package kvs

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/xrand"
)

func TestShardedPutTTLVisibleUntilDeadline(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	s.PutTTL(1, EncodeValue(1), time.Hour)
	if _, ok := s.Get(1); !ok {
		t.Fatal("Get missed a TTL key an hour before its deadline")
	}
	if got := s.Stats().Total().TTLKeys; got != 1 {
		t.Fatalf("TTLKeys = %d, want 1", got)
	}
}

// TestShardedTTLExpiryExactlyAtDeadline pins the boundary with an absolute
// deadline: a key whose deadline is the current instant (or earlier) is
// expired — expiry is inclusive, now >= deadline.
func TestShardedTTLExpiryExactlyAtDeadline(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	s.putDeadline(1, EncodeValue(1), clock.Nanos())
	if _, ok := s.Get(1); ok {
		t.Fatal("Get returned a key whose deadline was exactly now")
	}
	total := s.Stats().Total()
	if total.Expired == 0 {
		t.Fatalf("Expired = 0 after a lazy-expired read")
	}
	if total.GetHits != 0 {
		t.Fatalf("GetHits = %d for an expired read, want 0", total.GetHits)
	}
	// One nanosecond before any plausible "now": expired. Far future: visible.
	s.putDeadline(2, EncodeValue(2), 1)
	if _, ok := s.Get(2); ok {
		t.Fatal("Get returned a long-expired key")
	}
	s.putDeadline(3, EncodeValue(3), clock.Nanos()+int64(time.Hour))
	if _, ok := s.Get(3); !ok {
		t.Fatal("Get missed a key expiring an hour from now")
	}
}

func TestShardedPutTTLNonPositiveIsBornExpired(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.PutTTL(9, EncodeValue(9), 0)
	if _, ok := s.Get(9); ok {
		t.Fatal("PutTTL(0) stored a visible key")
	}
	s.PutTTL(10, EncodeValue(10), -time.Second)
	if _, ok := s.Get(10); ok {
		t.Fatal("PutTTL(-1s) stored a visible key")
	}
}

// TestShardedPutTTLOverflowSaturates pins the overflow clamp: a TTL whose
// absolute deadline would exceed int64 nanoseconds means "effectively
// never", not a wrapped negative deadline that kills the key at birth.
func TestShardedPutTTLOverflowSaturates(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.PutTTL(1, EncodeValue(1), time.Duration(math.MaxInt64))
	if _, ok := s.Get(1); !ok {
		t.Fatal("a maximum-duration TTL expired the key at birth")
	}
	if got := s.Reap(0); got != 0 {
		t.Fatalf("Reap removed %d keys under a maximum-duration TTL", got)
	}
}

func TestShardedPlainPutClearsTTL(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.putDeadline(1, EncodeValue(1), clock.Nanos()) // expired residue
	s.Put(1, EncodeValue(2))                        // plain overwrite: TTL gone
	v, ok := s.Get(1)
	if !ok {
		t.Fatal("Get missed a plain-Put key that once carried a TTL")
	}
	if d, _ := DecodeValue(v); d != 2 {
		t.Fatalf("Get = %d, want 2", d)
	}
	if got := s.Stats().Total().TTLKeys; got != 0 {
		t.Fatalf("TTLKeys = %d after plain overwrite, want 0", got)
	}
}

func TestShardedDeleteOfExpiredReportsAbsent(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.putDeadline(1, EncodeValue(1), clock.Nanos())
	if s.Delete(1) {
		t.Fatal("Delete of an expired key reported present")
	}
	// The residue is gone: a reap finds nothing.
	if got := s.Reap(0); got != 0 {
		t.Fatalf("Reap after expired Delete removed %d, want 0", got)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after expired Delete, want 0", s.Len())
	}
}

func TestShardedMultiOpsSkipExpired(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	s.putDeadline(1, EncodeValue(1), clock.Nanos())
	s.Put(2, EncodeValue(2))
	got := s.MultiGet([]uint64{1, 2})
	if got[0] != nil {
		t.Fatalf("MultiGet returned an expired key: %v", got[0])
	}
	if d, _ := DecodeValue(got[1]); d != 2 {
		t.Fatalf("MultiGet[1] = %v", got[1])
	}
	if removed := s.MultiDelete([]uint64{1, 2}); removed != 1 {
		t.Fatalf("MultiDelete counted %d visible removals, want 1", removed)
	}
}

func TestShardedRangeSnapshotSkipExpired(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	s.Put(1, EncodeValue(1))
	s.putDeadline(2, EncodeValue(2), clock.Nanos())
	s.PutTTL(3, EncodeValue(3), time.Hour)
	visited := map[uint64]bool{}
	s.Range(func(k uint64, v []byte) bool {
		visited[k] = true
		return true
	})
	if len(visited) != 2 || visited[2] {
		t.Fatalf("Range visited %v, want {1, 3}", visited)
	}
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot has %d keys, want 2", len(snap))
	}
	if _, leaked := snap[2]; leaked {
		t.Fatal("Snapshot contains an expired key")
	}
}

func TestShardedReap(t *testing.T) {
	s, _ := NewSharded(8, mkStd)
	const n = 200
	for k := uint64(0); k < n; k++ {
		s.putDeadline(k, EncodeValue(k), clock.Nanos()) // all expired
	}
	s.PutTTL(1000, EncodeValue(1000), time.Hour) // alive TTL key
	s.Put(2000, EncodeValue(2000))               // no TTL
	reaped := 0
	for i := 0; i < 100 && reaped < n; i++ {
		reaped += s.Reap(64) // incremental: small budget, repeated calls
	}
	if reaped != n {
		t.Fatalf("Reap removed %d keys in total, want %d", reaped, n)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after reap, want 2", s.Len())
	}
	if _, ok := s.Get(1000); !ok {
		t.Fatal("Reap removed an unexpired TTL key")
	}
	if _, ok := s.Get(2000); !ok {
		t.Fatal("Reap removed a TTL-free key")
	}
	total := s.Stats().Total()
	if total.Reaped != n {
		t.Fatalf("Reaped counter = %d, want %d", total.Reaped, n)
	}
	if total.TTLKeys != 1 {
		t.Fatalf("TTLKeys = %d after reap, want 1", total.TTLKeys)
	}
}

// TestShardedReapVsLazyReadNoDoubleAccounting drives readers over an
// expired key while Reap removes it: the lazy read observes a miss, the
// reap removes exactly one entry, and neither path corrupts the other (a
// read racing the reap must not resurrect or double-delete).
func TestShardedReapVsLazyReadNoDoubleAccounting(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	s.putDeadline(1, EncodeValue(1), clock.Nanos())
	if _, ok := s.Get(1); ok { // lazy read sees the expiry first
		t.Fatal("lazy read returned an expired key")
	}
	if got := s.Reap(0); got != 1 {
		t.Fatalf("Reap removed %d, want 1 (lazy read must not have deleted)", got)
	}
	if got := s.Reap(0); got != 0 {
		t.Fatalf("second Reap removed %d, want 0", got)
	}
	total := s.Stats().Total()
	if total.Reaped != 1 {
		t.Fatalf("Reaped = %d, want exactly 1", total.Reaped)
	}
}

func TestShardedMultiPutTTL(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	keys := []uint64{1, 2, 3}
	vals := [][]byte{EncodeValue(1), EncodeValue(2), EncodeValue(3)}
	s.MultiPutTTL(keys, vals, time.Hour)
	if got := s.Stats().Total().TTLKeys; got != 3 {
		t.Fatalf("TTLKeys = %d after MultiPutTTL, want 3", got)
	}
	for _, k := range keys {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("Get(%d) missed an hour-TTL key", k)
		}
	}
}

func TestMemtablePutTTL(t *testing.T) {
	m, _ := NewMemtable(1, mkStd)
	m.PutTTL(1, EncodeValue(1), time.Hour)
	if _, ok := m.Get(1); !ok {
		t.Fatal("Memtable.Get missed a TTL key an hour before its deadline")
	}
	m.PutTTL(2, EncodeValue(2), 0) // born expired (inclusive deadline)
	if _, ok := m.Get(2); ok {
		t.Fatal("Memtable.Get returned a born-expired key")
	}
	m.Put(2, EncodeValue(3)) // plain Put clears the TTL
	if v, ok := m.Get(2); !ok {
		t.Fatal("Memtable.Get missed a plain-Put key that once carried a TTL")
	} else if d, _ := DecodeValue(v); d != 3 {
		t.Fatalf("Memtable.Get = %d, want 3", d)
	}
}

// shardKeys scans the key space for n keys landing on shard sh.
func shardKeys(s *Sharded, sh, n int) []uint64 {
	keys := make([]uint64, 0, n)
	for k := uint64(0); len(keys) < n; k++ {
		if s.ShardOf(k) == sh {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestShardedReapCursorRewindsOnExhaustedBudget pins the cursor rewind:
// when the budget runs out with a shard's TTL set only partly examined,
// the next call must resume at that shard rather than skipping its tail
// for a full round-robin cycle. Every entry is expired, so examined ==
// removed and the per-shard Reaped counters make the walk order visible.
func TestShardedReapCursorRewindsOnExhaustedBudget(t *testing.T) {
	s, _ := NewSharded(2, mkStd)
	for _, k := range shardKeys(s, 0, 6) {
		s.putDeadline(k, EncodeValue(k), clock.Nanos())
	}
	for _, k := range shardKeys(s, 1, 6) {
		s.putDeadline(k, EncodeValue(k), clock.Nanos())
	}

	// Call 1 starts at shard 0, removes 4, and exhausts the budget with 2
	// entries left: the cursor must rewind to shard 0.
	if got := s.Reap(4); got != 4 {
		t.Fatalf("Reap call 1 removed %d, want 4", got)
	}
	// Call 2 therefore finishes shard 0 (2 entries) before spending the
	// rest on shard 1. Without the rewind it would start at shard 1 and
	// leave shard 0's tail stranded, and the per-shard split would be 4/4.
	if got := s.Reap(4); got != 4 {
		t.Fatalf("Reap call 2 removed %d, want 4", got)
	}
	st := s.Stats()
	if st.Shards[0].Reaped != 6 {
		t.Fatalf("shard 0 Reaped = %d after call 2, want 6 (cursor did not rewind)", st.Shards[0].Reaped)
	}
	if st.Shards[1].Reaped != 2 {
		t.Fatalf("shard 1 Reaped = %d after call 2, want 2", st.Shards[1].Reaped)
	}
	if got := s.Reap(4); got != 4 {
		t.Fatalf("Reap call 3 removed %d, want 4", got)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after three budgeted calls, want 0", s.Len())
	}
}

// TestShardedReapUnderConcurrentShrink storms budgeted Reap calls against
// writers that delete and rewrite the same TTL keys: the shard's TTL set
// shrinks underneath a parked cursor. Nothing may panic, every expired key
// must eventually go, and the Reaped counter can never exceed the number
// of TTL entries ever written.
func TestShardedReapUnderConcurrentShrink(t *testing.T) {
	s, _ := NewSharded(4, mkStd)
	const keys = 256
	var written atomic.Uint64
	for k := uint64(0); k < keys; k++ {
		s.putDeadline(k, EncodeValue(k), clock.Nanos())
		written.Add(1)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // shrinker: deletes and re-expires keys under the reaper
		defer wg.Done()
		rng := xrand.NewXorShift64(21)
		for !stop.Load() {
			k := rng.Intn(keys)
			if rng.Bernoulli(2) {
				s.Delete(k)
			} else {
				s.putDeadline(k, EncodeValue(k), clock.Nanos())
				written.Add(1)
			}
		}
	}()
	for i := 0; i < 400; i++ {
		s.Reap(16) // budget far below the live TTL set: parks mid-shard
	}
	stop.Store(true)
	wg.Wait()

	// Drain: every remaining expired entry must be reachable.
	for i := 0; i < 200 && s.Len() > 0; i++ {
		s.Reap(0)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", s.Len())
	}
	total := s.Stats().Total()
	if total.Reaped > written.Load() {
		t.Fatalf("Reaped = %d exceeds TTL entries ever written %d", total.Reaped, written.Load())
	}
	if total.TTLKeys != 0 {
		t.Fatalf("TTLKeys = %d after drain, want 0", total.TTLKeys)
	}
}
