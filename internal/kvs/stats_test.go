package kvs

// Tests for ShardStats aggregation: the Add merge rules for bias_mode
// (including the "mixed" verdict and its stickiness) and the monotonicity
// of bias_flips through the Total() fold under concurrent mode flips.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/bravolock/bravo/internal/bias"
	"github.com/bravolock/bravo/internal/xrand"
)

// TestShardStatsAddBiasMerge pins Add's bias_mode merge table: empty rows
// never poison a verdict, agreement keeps the mode, disagreement yields
// "mixed", and "mixed" is sticky once reached. Counters always sum.
func TestShardStatsAddBiasMerge(t *testing.T) {
	row := func(mode string, flips uint64) ShardStats {
		return ShardStats{BiasMode: mode, BiasFlips: flips}
	}
	cases := []struct {
		name      string
		rows      []ShardStats
		wantMode  string
		wantFlips uint64
	}{
		{"all empty", []ShardStats{row("", 0), row("", 0)}, "", 0},
		{"empty then biased", []ShardStats{row("", 0), row("biased", 2)}, "biased", 2},
		{"biased then empty", []ShardStats{row("biased", 2), row("", 0)}, "biased", 2},
		{"agreement", []ShardStats{row("fair", 1), row("fair", 4)}, "fair", 5},
		{"disagreement", []ShardStats{row("biased", 1), row("fair", 1)}, "mixed", 2},
		{"mixed is sticky", []ShardStats{row("biased", 0), row("fair", 0), row("fair", 3)}, "mixed", 3},
		{"mixed input folds in", []ShardStats{row("mixed", 7), row("biased", 1)}, "mixed", 8},
	}
	for _, tc := range cases {
		var total ShardStats
		for _, r := range tc.rows {
			total.Add(r)
		}
		if total.BiasMode != tc.wantMode {
			t.Errorf("%s: mode = %q, want %q", tc.name, total.BiasMode, tc.wantMode)
		}
		if total.BiasFlips != tc.wantFlips {
			t.Errorf("%s: flips = %d, want %d", tc.name, total.BiasFlips, tc.wantFlips)
		}
	}

	// Add sums the operation counters too — spot-check a pair so a future
	// field rename cannot silently drop aggregation.
	a := ShardStats{Keys: 3, Gets: 10, TxnCommits: 2, TxnKeys: 5}
	a.Add(ShardStats{Keys: 4, Gets: 1, TxnCommits: 1, TxnAborts: 6, TxnKeys: 2})
	if a.Keys != 7 || a.Gets != 11 || a.TxnCommits != 3 || a.TxnAborts != 6 || a.TxnKeys != 7 {
		t.Errorf("counter sums wrong: %+v", a)
	}
}

// TestShardedTotalFlipsMonotonicUnderFlips reads Total() in a loop while a
// flipper forces shard modes and traffic runs: the folded bias_flips must
// never go backwards, and the folded mode must always be a real verdict —
// a torn per-shard capture would surface here as a dip or a garbage mode.
func TestShardedTotalFlipsMonotonicUnderFlips(t *testing.T) {
	s, err := NewSharded(4, mkAdaptive)
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{"biased": true, "neutral": true, "fair": true, "mixed": true}
	var stop atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // flipper
		defer wg.Done()
		modes := [...]bias.Mode{bias.ModeFair, bias.ModeNeutral, bias.ModeBiased}
		for i := 0; !stop.Load(); i++ {
			s.ShardAdaptor(i % 4).ForceMode(modes[i%len(modes)])
			runtime.Gosched()
		}
	}()
	wg.Add(1)
	go func() { // traffic
		defer wg.Done()
		rng := xrand.NewXorShift64(11)
		for i := 0; !stop.Load(); i++ {
			k := rng.Intn(256)
			if i%3 == 0 {
				s.Put(k, EncodeValue(rng.Next()))
			} else {
				s.Get(k)
			}
		}
	}()

	var last uint64
	for snap := 0; snap < 1500; snap++ {
		total := s.Stats().Total()
		if !valid[total.BiasMode] {
			t.Fatalf("snapshot %d: impossible total bias_mode %q", snap, total.BiasMode)
		}
		if total.BiasFlips < last {
			t.Fatalf("snapshot %d: total flips went backwards %d -> %d", snap, last, total.BiasFlips)
		}
		last = total.BiasFlips
	}
	stop.Store(true)
	wg.Wait()
}
