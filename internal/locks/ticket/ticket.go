// Package ticket implements a classic FIFO ticket mutex.
//
// Ticket locks are the building block of the C-TKT-TKT cohort mutex used by
// the paper's Cohort-RW competitor [6, 20]: arrivals take a ticket with a
// fetch-and-add and wait for the grant counter to reach it, which yields
// strict FIFO admission.
package ticket

import (
	"sync/atomic"

	"github.com/bravolock/bravo/internal/spin"
)

// Mutex is a FIFO ticket lock. The zero value is unlocked.
type Mutex struct {
	next  atomic.Uint32 // next ticket to hand out
	owner atomic.Uint32 // ticket currently being served
}

// Lock acquires the mutex, admitting callers in arrival order.
func (m *Mutex) Lock() {
	t := m.next.Add(1) - 1
	if m.owner.Load() == t {
		return
	}
	var b spin.Backoff
	for m.owner.Load() != t {
		b.Once()
	}
}

// TryLock acquires the mutex only if it is free and nobody is queued.
func (m *Mutex) TryLock() bool {
	o := m.owner.Load()
	if m.next.Load() != o {
		return false
	}
	return m.next.CompareAndSwap(o, o+1)
}

// Unlock releases the mutex, serving the next queued ticket if any.
func (m *Mutex) Unlock() {
	m.owner.Add(1)
}

// HasWaiters reports whether any caller is queued behind the current owner.
// The cohort mutex uses this ("alone?" in the lock-cohorting paper) to decide
// whether to hand the global lock to a local successor.
func (m *Mutex) HasWaiters() bool {
	return m.next.Load()-m.owner.Load() > 1
}
