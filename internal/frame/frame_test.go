package frame

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)} {
		f := Append(nil, payload)
		if len(f) != HeaderSize+len(payload) {
			t.Fatalf("framed length %d, want %d", len(f), HeaderSize+len(payload))
		}
		got, n, status := Split(f)
		if status != OK || n != len(f) || !bytes.Equal(got, payload) {
			t.Fatalf("Split(Append(%q)) = %q, %d, %v", payload, got, n, status)
		}
		// Seal over a reserved-header build must produce identical bytes.
		sealed := append(make([]byte, HeaderSize), payload...)
		Seal(sealed)
		if !bytes.Equal(sealed, f) {
			t.Fatalf("Seal produced %x, Append produced %x", sealed, f)
		}
	}
}

func TestSplitConcatenated(t *testing.T) {
	f := Append(Append(nil, []byte("one")), []byte("two"))
	p1, n1, s1 := Split(f)
	if s1 != OK || string(p1) != "one" {
		t.Fatalf("first frame: %q, %v", p1, s1)
	}
	p2, n2, s2 := Split(f[n1:])
	if s2 != OK || string(p2) != "two" || n1+n2 != len(f) {
		t.Fatalf("second frame: %q, %v, consumed %d of %d", p2, s2, n1+n2, len(f))
	}
}

func TestSplitIncomplete(t *testing.T) {
	f := Append(nil, []byte("payload"))
	for cut := 0; cut < len(f); cut++ {
		if _, _, status := Split(f[:cut]); status != Incomplete {
			t.Fatalf("Split of %d/%d bytes = %v, want Incomplete", cut, len(f), status)
		}
	}
}

func TestSplitCorrupt(t *testing.T) {
	// CRC mismatch over a fully-present payload.
	f := Append(nil, []byte("payload"))
	f[HeaderSize]++
	if _, _, status := Split(f); status != Corrupt {
		t.Fatalf("flipped payload byte: %v, want Corrupt", status)
	}
	// Insane declared length: corrupt immediately, not a 1GB wait.
	var huge [HeaderSize]byte
	binary.LittleEndian.PutUint32(huge[:], MaxPayload+1)
	if _, _, status := Split(huge[:]); status != Corrupt {
		t.Fatalf("oversize length: %v, want Corrupt", status)
	}
}

func TestPeekLen(t *testing.T) {
	f := Append(nil, []byte("abc"))
	if got := PeekLen(f); got != len(f) {
		t.Fatalf("PeekLen = %d, want %d", got, len(f))
	}
	if got := PeekLen(f[:HeaderSize-1]); got != 0 {
		t.Fatalf("PeekLen on a short header = %d, want 0", got)
	}
}
