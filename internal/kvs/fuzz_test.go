package kvs

// Native fuzz harnesses for the durability decoders: whatever bytes a
// damaged disk hands them, they must reject cleanly — never panic, never
// allocate absurdly, never apply half a record. CI runs the seed corpus on
// every test run and a short -fuzz exploration per target.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"testing"

	"github.com/bravolock/bravo/internal/frame"
)

// buildRecord frames a payload the way commit does, so seeds include
// structurally-valid records.
func buildRecord(payload []byte) []byte {
	rec := make([]byte, walHeaderSize, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], frame.Checksum(payload))
	return append(rec, payload...)
}

// validPayload encodes a three-entry batch via the real writer path.
func validPayload() []byte {
	w := &shardWAL{}
	w.begin(3)
	w.addPut(7, []byte("value"), 0)
	w.addPut(8, []byte("ttl"), 12345)
	w.addDelete(9)
	payload := append([]byte(nil), w.buf[walHeaderSize:]...)
	return payload
}

// legacyPayload encodes a v1 (pre-LSN) record payload by hand: the decoder
// must still accept the old layout.
func legacyPayload() []byte {
	p := []byte{walVersion1}
	p = binary.LittleEndian.AppendUint32(p, 1)
	p = append(p, walOpPut)
	p = binary.LittleEndian.AppendUint64(p, 42)
	p = binary.LittleEndian.AppendUint32(p, 2)
	return append(p, 'v', '1')
}

// txnPayload encodes a two-participant transaction witness record via the
// real writer path.
func txnPayload() []byte {
	w := &shardWAL{lsn: 4}
	w.beginTxn([]walPart{{shard: 0, lsn: 5}, {shard: 3, lsn: 2}}, 2)
	w.addPut(7, []byte("a"), 0)
	w.addDelete(9)
	return append([]byte(nil), w.buf[walHeaderSize:]...)
}

func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(buildRecord(validPayload()))
	f.Add(buildRecord(txnPayload()))
	f.Add(buildRecord(txnPayload())[:walHeaderSize+20])                     // torn witness record
	f.Add(buildRecord(validPayload())[:5])                                  // torn header
	f.Add(append(buildRecord(validPayload()), 0xFF))                        // trailing garbage
	f.Add(buildRecord(append([]byte{walVersion}, make([]byte, 12)...)))     // empty batch at LSN 0
	f.Add(buildRecord([]byte{walVersion1, 1, 0, 0, 0}))                     // truncated legacy batch
	f.Add(buildRecord(legacyPayload()))                                     // valid legacy record
	f.Add(buildRecord(append([]byte{99}, make([]byte, 12)...)))             // unknown version
	f.Add(buildRecord(append([]byte{walVersionSnap}, make([]byte, 12)...))) // snapshot record: wire-only
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})                       // insane length
	f.Add(bytes.Repeat([]byte{0}, 64))                                      // zero-length records... of garbage CRC
	f.Fuzz(func(t *testing.T, data []byte) {
		applied := 0
		valid, last := walReplay(data, 0, func(rec walRecord) {
			if rec.version == walVersionTxn {
				// Witness records must surface a canonical participant
				// list: at least two shards, strictly ascending, nonzero
				// LSNs.
				for i, p := range rec.parts {
					if p.lsn == 0 || (i > 0 && p.shard <= rec.parts[i-1].shard) {
						t.Fatalf("decoder surfaced non-canonical participant list %v", rec.parts)
					}
				}
				if len(rec.parts) < 2 {
					t.Fatalf("decoder surfaced participant list %v for lsn %d", rec.parts, rec.lsn)
				}
			} else if rec.parts != nil {
				t.Fatalf("non-transaction record (v%d) carries participants", rec.version)
			}
			for _, e := range rec.entries {
				// Decoded entries must be internally sane: ops in range,
				// values inside the input buffer.
				switch e.op {
				case walOpPut, walOpPutTTL, walOpDelete:
				default:
					t.Fatalf("decoder surfaced op %d", e.op)
				}
				if len(e.val) > len(data) {
					t.Fatalf("value of %d bytes from %d input bytes", len(e.val), len(data))
				}
			}
			applied++
		})
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid offset %d outside [0, %d]", valid, len(data))
		}
		// Replay must be deterministic and idempotent on the valid prefix.
		applied2 := 0
		valid2, last2 := walReplay(data[:valid], 0, func(walRecord) { applied2++ })
		if valid2 != valid || applied2 != applied || last2 != last {
			t.Fatalf("replay of the valid prefix gave offset %d records %d lsn %d, want %d/%d/%d",
				valid2, applied2, last2, valid, applied, last)
		}
	})
}

// FuzzTxnWAL feeds arbitrary bytes to two shards' on-disk logs of a
// four-shard durable engine and opens it. Whatever the logs claim —
// truncated witness records, participant lists pointing at LSNs that never
// happened, cross-references between the two mutilated files — OpenSharded
// must never panic, and when it does accept the directory, recovery
// (including transaction roll-forward, which appends repair records) must
// be deterministic: closing and reopening yields the identical snapshot.
func FuzzTxnWAL(f *testing.F) {
	const shards = 4
	// Harvest seed logs from a real engine that committed cross-shard
	// transactions, so the fuzzer starts from live witness records.
	seedDir := f.TempDir()
	s, err := OpenSharded(seedDir, shards, mkStd, SyncNone)
	if err != nil {
		f.Fatal(err)
	}
	var ka, kb uint64
	ka = 1
	for kb = 2; s.ShardOf(kb) == s.ShardOf(ka); kb++ {
	}
	s.Put(ka, []byte("base-a"))
	s.PutTTL(kb, []byte("base-b"), 1<<40)
	if err := s.Txn([]uint64{ka, kb}, func(tx *Tx) error {
		tx.Put(ka, []byte("txn-a"))
		tx.Delete(kb)
		return nil
	}); err != nil {
		f.Fatal(err)
	}
	s.Close()
	walA, err := os.ReadFile(s.walPath(s.ShardOf(ka)))
	if err != nil {
		f.Fatal(err)
	}
	walB, err := os.ReadFile(s.walPath(s.ShardOf(kb)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(walA, walB)
	f.Add(walA, walB[:len(walB)-1])   // torn witness on one participant
	f.Add(walA[:len(walA)/2], walB)   // torn mid-log
	f.Add([]byte{}, walB)             // one participant lost wholesale
	f.Add(walB, walA)                 // witnesses on the wrong shards
	f.Add(walA, walA)                 // same witness claimed twice
	f.Add([]byte{0xFF}, []byte{0x00}) // garbage
	f.Fuzz(func(t *testing.T, a, b []byte) {
		dir := t.TempDir()
		if err := writeManifest(dir, shards); err != nil {
			t.Fatal(err)
		}
		for i, data := range [][]byte{a, b} {
			path := fmt.Sprintf("%s/shard-%04d.wal", dir, i)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		s, err := OpenSharded(dir, shards, mkStd, SyncNone)
		if err != nil {
			return // rejection is fine; panics are not
		}
		snap := s.Snapshot()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := OpenSharded(dir, shards, mkStd, SyncNone)
		if err != nil {
			t.Fatalf("accepted once, rejected on reopen: %v", err)
		}
		defer r.Close()
		snap2 := r.Snapshot()
		if len(snap2) != len(snap) {
			t.Fatalf("reopen changed visible keys: %d then %d", len(snap), len(snap2))
		}
		for k, v := range snap {
			if v2, ok := snap2[k]; !ok || !bytes.Equal(v, v2) {
				t.Fatalf("reopen changed key %d: %x then %x (present=%v)", k, v, v2, ok)
			}
		}
	})
}

func FuzzSnapshotLoad(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("BRVOSNP1"))
	// A real snapshot file, via the real writer.
	dir := f.TempDir()
	s, err := OpenSharded(dir, 1, mkStd, SyncNone)
	if err != nil {
		f.Fatal(err)
	}
	s.Put(1, []byte("one"))
	s.PutTTL(2, []byte("two"), 1<<40)
	if err := s.Checkpoint(); err != nil {
		f.Fatal(err)
	}
	snap, err := os.ReadFile(s.snapPath(0))
	if err != nil {
		f.Fatal(err)
	}
	s.Close()
	f.Add(snap)
	f.Add(snap[:len(snap)-2]) // torn trailer
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, _, err := loadSnapshot(data)
		if err != nil {
			return
		}
		for _, e := range entries {
			if e.op != walOpPut && e.op != walOpPutTTL {
				t.Fatalf("snapshot surfaced op %d", e.op)
			}
			if len(e.val) > len(data) {
				t.Fatalf("value of %d bytes from %d input bytes", len(e.val), len(data))
			}
		}
	})
}
