// Package self provides thread identity for the BRAVO fast path.
//
// The paper hashes "the calling thread's identity" with the lock address
// (Listing 1, Hash(L, Self)). Go offers no cheap goroutine ID, so we derive
// identity from the address of a stack local. Two properties make this a
// faithful substitute:
//
//  1. Dispersal: concurrent goroutines occupy disjoint stacks, so their
//     identities differ and their table probes diffuse, which is the property
//     BRAVO's coherence-avoidance relies on.
//  2. Temporal stability: within a hot loop the frame address of the lock
//     operation is stable, so a goroutine repeatedly locking the same lock
//     reuses the same slot — the temporal-locality property the paper calls
//     out in §5.2.
//
// The identity may change on stack growth or when the call path changes;
// the paper explicitly notes (§7) that the index function need not be
// deterministic, so occasional identity drift is benign. Workers that want a
// pinned identity (e.g. the benchmark harness assigning logical CPUs) use an
// explicit ID instead.
package self

import (
	"sync/atomic"
	"unsafe"

	"github.com/bravolock/bravo/internal/hash"
)

// ID returns the caller's goroutine identity. It is stable across calls from
// the same goroutine in steady state and distinct across concurrently-running
// goroutines.
//
// The function is kept out of line: its own frame sits at a fixed offset
// from the goroutine's stack pointer at each call from a given site, and the
// probe variable must stay on that frame (inlining would let the probe be
// re-homed per call site or, worse, escape).
//
//go:noinline
func ID() uint64 {
	var probe byte
	return hash.Mix64(uint64(uintptr(unsafe.Pointer(&probe))))
}

var nextExplicit atomic.Uint64

// NextExplicitID hands out a fresh explicit identity. Benchmark workers and
// long-lived readers use explicit IDs so the (thread, lock) → slot mapping is
// exactly reproducible run to run.
func NextExplicitID() uint64 {
	return hash.Mix64(nextExplicit.Add(1))
}
