package kvserv

// The serving-layer replication contract: a durable kvserv is a primary
// (stream endpoints mounted, commit-LSN tokens on writes), a follower
// kvserv serves the replica read-only and honors the tokens. Both ends
// run over real TCP — this is the e2e replication job CI runs.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/repl"
	"github.com/bravolock/bravo/internal/rwl"
)

// startFollowerServer opens a follower of primary and serves it over TCP.
func startFollowerServer(t *testing.T, primary string, cfg Config) (string, *repl.Follower) {
	t.Helper()
	f, err := repl.Open(repl.Config{
		Primary:       primary,
		MkLock:        func() rwl.RWLock { return core.New(new(stdrw.Lock)) },
		RetryInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return startServerWithFollower(t, f, cfg), f
}

func startServerWithFollower(t *testing.T, f *repl.Follower, cfg Config) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewFollower(f, cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return "http://" + l.Addr().String()
}

func TestReplE2EPrimaryAndFollowerServers(t *testing.T) {
	dir := t.TempDir()
	engine, err := kvs.OpenSharded(dir, 8, func() rwl.RWLock { return core.New(new(stdrw.Lock)) }, kvs.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { engine.Close() })
	primaryURL := startServerWith(t, engine, Config{})

	// A write on the primary returns the read-your-writes token.
	resp, _ := do(t, http.MethodPut, primaryURL+"/kv/42", []byte("hello"))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	token := resp.Header.Get("X-Commit-Lsn")
	shardHdr := resp.Header.Get("X-Commit-Shard")
	if token == "" || shardHdr == "" {
		t.Fatalf("durable PUT missing commit headers: lsn=%q shard=%q", token, shardHdr)
	}
	if want := fmt.Sprintf("%d", engine.ShardOf(42)); shardHdr != want {
		t.Fatalf("X-Commit-Shard = %s, want %s", shardHdr, want)
	}

	// Batched writes return one token per touched shard.
	mput := []byte(`{"entries":[{"key":1,"value":"YQ=="},{"key":2,"value":"Yg=="},{"key":3,"value":"Yw=="}]}`)
	resp, body := do(t, http.MethodPost, primaryURL+"/mput", mput)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mput status %d: %s", resp.StatusCode, body)
	}
	var mr struct {
		Applied int               `json:"applied"`
		LSNs    map[string]uint64 `json:"lsns"`
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Applied != 3 || len(mr.LSNs) == 0 {
		t.Fatalf("mput response %+v: want 3 applied and per-shard lsns", mr)
	}

	// The primary's replication endpoints are mounted.
	resp, body = do(t, http.MethodGet, primaryURL+"/repl/status", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary /repl/status: %d", resp.StatusCode)
	}
	var pst repl.Status
	if err := json.Unmarshal(body, &pst); err != nil {
		t.Fatal(err)
	}
	if pst.Shards != 8 || !pst.Durable {
		t.Fatalf("primary status %+v", pst)
	}

	// Follower over real TCP: token-gated read-your-writes.
	followerURL, f := startFollowerServer(t, primaryURL, Config{MinLSNWait: 100 * time.Millisecond})
	resp, body = do(t, http.MethodGet, followerURL+"/kv/42?min_lsn="+token, nil)
	if resp.StatusCode != http.StatusOK || string(body) != "hello" {
		t.Fatalf("follower read-your-writes: %d %q", resp.StatusCode, body)
	}
	// A token from the future 409s after the bounded wait.
	resp, _ = do(t, http.MethodGet, followerURL+"/kv/42?min_lsn=999999", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("future token status %d, want 409", resp.StatusCode)
	}
	// min_lsn gates /mget too.
	if err := f.WaitCaughtUp(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	resp, body = do(t, http.MethodGet, followerURL+"/mget?keys=1,2,3&min_lsn="+token, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower mget: %d %s", resp.StatusCode, body)
	}

	// Writes on the follower are refused, naming the primary.
	for _, probe := range []struct{ method, path string }{
		{http.MethodPut, "/kv/7"},
		{http.MethodDelete, "/kv/7"},
		{http.MethodPost, "/mput"},
		{http.MethodPost, "/flush"},
		{http.MethodPost, "/checkpoint"},
	} {
		resp, body = do(t, probe.method, followerURL+probe.path, []byte("x"))
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s %s on follower: %d, want 403", probe.method, probe.path, resp.StatusCode)
		}
	}

	// Follower stats carry the replication view.
	resp, body = do(t, http.MethodGet, followerURL+"/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower stats: %d", resp.StatusCode)
	}
	var st struct {
		Follower *struct {
			Primary string `json:"primary"`
			Shards  []struct {
				AppliedLSN uint64 `json:"applied_lsn"`
			} `json:"shards"`
		} `json:"follower"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Follower == nil || st.Follower.Primary != primaryURL || len(st.Follower.Shards) != 8 {
		t.Fatalf("follower stats section %+v", st.Follower)
	}
	var applied uint64
	for _, sp := range st.Follower.Shards {
		applied += sp.AppliedLSN
	}
	if applied == 0 {
		t.Fatal("follower stats show no applied LSNs after catch-up")
	}
	resp, _ = do(t, http.MethodGet, followerURL+"/repl/status", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower /repl/status: %d", resp.StatusCode)
	}

	// Durable primary honors its own tokens (and refuses foreign ones).
	resp, _ = do(t, http.MethodGet, primaryURL+"/kv/42?min_lsn="+token, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary min_lsn read: %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, primaryURL+"/kv/42?min_lsn=999999", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("primary future-token read: %d, want 409", resp.StatusCode)
	}
}

// TestReplVolatileServerPostures: no WAL, no replication — the endpoints
// are absent, tokens are refused, and writes carry no commit headers.
func TestReplVolatileServerPostures(t *testing.T) {
	url, _ := startServer(t, Config{})
	resp, _ := do(t, http.MethodPut, url+"/kv/1", []byte("v"))
	if resp.Header.Get("X-Commit-Lsn") != "" {
		t.Fatal("volatile PUT returned a commit LSN")
	}
	resp, _ = do(t, http.MethodGet, url+"/repl/stream?shard=0&from=1", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("volatile /repl/stream: %d, want 404 (not mounted)", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, url+"/kv/1?min_lsn=1", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("volatile min_lsn read: %d, want 400", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, url+"/kv/1?min_lsn=bogus", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed min_lsn: %d, want 400", resp.StatusCode)
	}
}
