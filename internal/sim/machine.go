// Package sim is a deterministic coherence-cost simulator used to
// regenerate the *shapes* of the paper's figures on hardware unlike the
// authors' 72-way NUMA testbed.
//
// The paper's results are driven by one mechanism: the cost of moving a
// cache line between cores when lock state is written. We therefore model a
// machine as a directory of cache lines — each with an owning core, a
// sharer set and a serialization horizon — and charge lock operations for
// exactly the line accesses the real algorithms perform (an arriving BA
// reader RMWs the central reader-indicator line; a BRAVO fast reader CASes
// a mostly-private table slot line and merely loads the RBias line; a
// Per-CPU writer sweeps one line per CPU; and so on). Threads advance in
// virtual time under an event scheduler; blocking waits cost context-switch
// time, remote RMWs serialize on the line, and everything is deterministic
// in the seed.
//
// The model is deliberately first-order: it captures local-vs-remote access
// cost, hot-line serialization, NUMA distance and blocking overhead, which
// are what determine who wins, by what factor, and where crossovers fall.
// It does not model bandwidth saturation, prefetching beyond an amortized
// scan rate, or admission-order subtleties below that level.
package sim

import (
	"github.com/bravolock/bravo/internal/topo"
)

// LineID names one simulated cache line.
type LineID uint32

// CostConfig holds the machine's latency parameters in nanoseconds. The
// defaults approximate the paper's Xeon E5/E7 systems.
//
// Transfers are priced by temperature: a line in active ping-pong (written
// again within HotWindowNs) costs a full cache-to-cache transfer with the
// NUMA distance applied, while a quiet line — written long ago, so its data
// has reached the (inclusive) L3 or been written back — costs far less and
// is distance-insensitive. This distinction is what keeps occasional false
// sharing (Figure 1's near-collisions) cheap while sustained hot-line
// traffic (a centralized reader indicator) stays expensive.
type CostConfig struct {
	// LocalNs is an RMW or store hitting the core's own cache.
	LocalNs float64
	// SharedLoadNs is a load of a line already present in the core's cache.
	SharedLoadNs float64
	// IntraSocketNs is a hot ownership transfer between cores of one socket.
	IntraSocketNs float64
	// InterSocketNs is a hot transfer across the socket interconnect.
	InterSocketNs float64
	// QuietNs is a transfer of a line with no recent exclusive activity
	// (an L3 / snoop-filter hit).
	QuietNs float64
	// HotWindowNs bounds how recently a line must have been written for a
	// transfer to count as hot.
	HotWindowNs float64
	// MemoryNs is a cold fetch from memory.
	MemoryNs float64
	// BlockNs is the cost of parking a thread (futex wait path).
	BlockNs float64
	// WakeNs is the latency from wakeup to running.
	WakeNs float64
	// ScanNsPerSlot is the amortized revocation scan rate; the paper
	// measures ≈1.1ns per 8-byte element with hardware prefetch.
	ScanNsPerSlot float64
	// WorkUnitNs converts the benchmarks' abstract "units of work" (RNG
	// steps, countdown iterations) into time.
	WorkUnitNs float64
}

// DefaultCosts returns the calibration used for all recorded experiments.
func DefaultCosts() CostConfig {
	return CostConfig{
		LocalNs:       6,
		SharedLoadNs:  2,
		IntraSocketNs: 100,
		InterSocketNs: 200,
		QuietNs:       18,
		HotWindowNs:   2000,
		MemoryNs:      130,
		BlockNs:       1500,
		WakeNs:        1800,
		ScanNsPerSlot: 1.1,
		WorkUnitNs:    2,
	}
}

// line is one directory entry.
type line struct {
	owner     int32 // CPU that last wrote; -1 when unwritten
	sharers   [4]uint64
	busyUntil float64 // serialization horizon for exclusive accesses
	lastExcl  float64 // completion time of the last exclusive access
}

func (l *line) soleSharer(cpu int) bool {
	var want [4]uint64
	want[cpu>>6] = 1 << (cpu & 63)
	return l.sharers == want
}

func (l *line) addSharer(cpu int) { l.sharers[cpu>>6] |= 1 << (cpu & 63) }
func (l *line) hasSharer(cpu int) bool {
	return l.sharers[cpu>>6]&(1<<(cpu&63)) != 0
}
func (l *line) setExclusive(cpu int) {
	l.owner = int32(cpu)
	l.sharers = [4]uint64{}
	l.addSharer(cpu)
}

// Machine is the simulated host: a topology plus a cache-line directory.
type Machine struct {
	Top  topo.Topology
	Cost CostConfig
	line []line
	// lockAddrSeq spaces synthetic lock addresses like heap-allocated
	// locks. Per-machine, not process-global: a figure point's slot
	// hashing must not depend on how many locks earlier points (or earlier
	// tests, in whatever order the runner picked) happened to build.
	lockAddrSeq uint64
}

// NewMachine returns a machine with the given topology and costs.
func NewMachine(t topo.Topology, c CostConfig) *Machine {
	if t.NumCPUs() > 256 {
		panic("sim: topology exceeds 256 CPUs")
	}
	return &Machine{Top: t, Cost: c, lockAddrSeq: 0xc000100000}
}

// nextLockAddr returns a fresh synthetic lock address.
func (m *Machine) nextLockAddr() uint64 {
	m.lockAddrSeq += 192
	return m.lockAddrSeq
}

// NewLine allocates a fresh, unwritten cache line.
func (m *Machine) NewLine() LineID {
	m.line = append(m.line, line{owner: -1})
	return LineID(len(m.line) - 1)
}

// NewLines allocates n contiguous lines (e.g. a visible readers table).
func (m *Machine) NewLines(n int) []LineID {
	ids := make([]LineID, n)
	for i := range ids {
		ids[i] = m.NewLine()
	}
	return ids
}

// transferCost is the latency of sourcing a line for cpu at time t.
func (m *Machine) transferCost(l *line, cpu int, t float64) float64 {
	if l.owner < 0 {
		return m.Cost.MemoryNs
	}
	if t-l.lastExcl >= m.Cost.HotWindowNs {
		return m.Cost.QuietNs
	}
	if m.Top.SocketOf(int(l.owner)) == m.Top.SocketOf(cpu) {
		return m.Cost.IntraSocketNs
	}
	return m.Cost.InterSocketNs
}

// RMW performs an atomic read-modify-write of id by cpu starting at t and
// returns its completion time. Exclusive accesses to a line serialize: this
// is what gives a centralized reader indicator its throughput ceiling. A
// line counts as locally held only if no other core has queued a transfer
// since we last owned it (busyUntil ≤ t); otherwise our copy has been
// stolen and we pay a transfer like everyone else.
func (m *Machine) RMW(cpu int, id LineID, t float64) float64 {
	l := &m.line[id]
	if int(l.owner) == cpu && l.soleSharer(cpu) && l.busyUntil <= t {
		l.lastExcl = t + m.Cost.LocalNs
		return l.lastExcl
	}
	start := t
	if l.busyUntil > start {
		start = l.busyUntil
	}
	end := start + m.transferCost(l, cpu, start)
	l.busyUntil = end
	l.lastExcl = end
	l.setExclusive(cpu)
	return end
}

// Store is cost-equivalent to RMW in this model (both need exclusivity).
func (m *Machine) Store(cpu int, id LineID, t float64) float64 {
	return m.RMW(cpu, id, t)
}

// Load performs a read of id by cpu at t. Read sharing does not serialize:
// once a core holds a copy, repeated loads are near-free — the property
// that makes BRAVO's RBias check cheap for every reader.
func (m *Machine) Load(cpu int, id LineID, t float64) float64 {
	l := &m.line[id]
	if l.hasSharer(cpu) {
		return t + m.Cost.SharedLoadNs
	}
	end := t + m.transferCost(l, cpu, t)
	l.addSharer(cpu)
	return end
}

// Work advances time by n abstract benchmark work units.
func (m *Machine) Work(t float64, units float64) float64 {
	return t + units*m.Cost.WorkUnitNs
}
