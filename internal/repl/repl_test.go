package repl

// Shared harness plus the end-to-end test: a durable primary behind a real
// TCP socket, followers tailing it, reads converging. The model-based and
// chaos suites build on the same host.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/locks/pfq"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
)

func mkStd() rwl.RWLock   { return new(stdrw.Lock) }
func mkBravo() rwl.RWLock { return core.New(new(pfq.Lock)) }

// primaryHost serves a swappable engine's replication endpoints — the
// "machine" a primary process runs on, which chaos tests can take down
// and bring back with a recovered engine. While down it answers 503,
// which followers treat like any other outage: retry.
type primaryHost struct {
	mu sync.Mutex
	h  http.Handler
}

func (ph *primaryHost) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ph.mu.Lock()
	h := ph.h
	ph.mu.Unlock()
	if h == nil {
		http.Error(w, "primary down", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// set installs engine as the served primary (nil takes the host down).
// wrap, when non-nil, wraps the handler (the chaos tests' stream cutter).
func (ph *primaryHost) set(engine *kvs.Sharded, wrap func(http.Handler) http.Handler) {
	ph.mu.Lock()
	defer ph.mu.Unlock()
	if engine == nil {
		ph.h = nil
		return
	}
	mux := http.NewServeMux()
	p := NewPrimary(engine)
	p.SetPoll(500 * time.Microsecond)
	p.Register(mux)
	var h http.Handler = mux
	if wrap != nil {
		h = wrap(mux)
	}
	ph.h = h
}

// testServer is a thin handle on an httptest server: its URL, shutdown,
// and the connection axe the chaos tests swing.
type testServer struct {
	url        string
	close      func()
	closeConns func()
}

func newTestServer(h http.Handler) *testServer {
	srv := httptest.NewServer(h)
	return &testServer{url: srv.URL, close: srv.Close, closeConns: srv.CloseClientConnections}
}

// startPrimary opens a durable engine in dir and serves its replication
// endpoints over a real TCP socket, returning the engine, the base URL,
// and the host for later swaps.
func startPrimary(t *testing.T, dir string, shards int, mk rwl.Factory) (*kvs.Sharded, string, *primaryHost) {
	engine, url, ph, _ := startPrimaryHost(t, dir, shards, mk)
	return engine, url, ph
}

// startPrimaryHost additionally returns the HTTP server, whose
// CloseClientConnections is the chaos tests' axe for established streams.
func startPrimaryHost(t *testing.T, dir string, shards int, mk rwl.Factory) (*kvs.Sharded, string, *primaryHost, *httptest.Server) {
	t.Helper()
	engine, err := kvs.OpenSharded(dir, shards, mk, kvs.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	ph := &primaryHost{}
	ph.set(engine, nil)
	srv := httptest.NewServer(ph)
	t.Cleanup(srv.Close)
	t.Cleanup(func() { engine.Close() })
	return engine, srv.URL, ph, srv
}

// openFollower opens a follower with test-friendly pacing.
func openFollower(t *testing.T, primary string, opts func(*Config)) *Follower {
	t.Helper()
	cfg := Config{Primary: primary, MkLock: mkBravo, RetryInterval: 5 * time.Millisecond}
	if opts != nil {
		opts(&cfg)
	}
	f, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// requireConverged asserts the follower's visible state equals the
// primary's, shard by shard.
func requireConverged(t *testing.T, primary, follower *kvs.Sharded, label string) {
	t.Helper()
	want, got := primary.Snapshot(), follower.Snapshot()
	if len(want) != len(got) {
		t.Fatalf("%s: follower has %d visible keys, primary %d", label, len(got), len(want))
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok || !bytes.Equal(gv, wv) {
			t.Fatalf("%s: key %d = %x (present %v), primary has %x", label, k, gv, ok, wv)
		}
	}
}

// lsnOracle is the chaos suites' prefix-consistency check: every applied
// record either continues its shard's sequence by exactly one or is a
// snapshot jump forward. Anything else is a lost, duplicated, or
// reordered record.
type lsnOracle struct {
	t    *testing.T
	mu   sync.Mutex
	last map[int]uint64
	// snapJumps counts snapshot-frame applications observed.
	snapJumps int
}

func newLSNOracle(t *testing.T) *lsnOracle {
	return &lsnOracle{t: t, last: map[int]uint64{}}
}

func (o *lsnOracle) hook(shard int, lsn uint64, snapshot bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	last := o.last[shard]
	if snapshot {
		if lsn < last {
			o.t.Errorf("oracle: snapshot rewound shard %d to LSN %d after %d", shard, lsn, last)
		}
		o.snapJumps++
	} else if lsn != last+1 {
		o.t.Errorf("oracle: shard %d applied LSN %d after %d — lost/duplicated/reordered record", shard, lsn, last)
	}
	o.last[shard] = lsn
}

func (o *lsnOracle) snapshots() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.snapJumps
}

// TestE2EPrimaryFollowerOverTCP is the end-to-end path: a follower started
// from empty against a primary with a prior checkpoint (so part of the
// history only exists as a snapshot) converges, serves reads, honors
// read-your-writes barriers, and rides out a primary outage.
func TestE2EPrimaryFollowerOverTCP(t *testing.T) {
	dir := t.TempDir()
	engine, url, ph, srv := startPrimaryHost(t, dir, 4, mkBravo)
	for k := uint64(0); k < 128; k++ {
		engine.Put(k, kvs.EncodeValue(k))
	}
	engine.Delete(7)
	if err := engine.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(128); k < 160; k++ {
		engine.PutTTL(k, kvs.EncodeValue(k), time.Hour)
	}

	oracle := newLSNOracle(t)
	f := openFollower(t, url, func(c *Config) { c.OnApply = oracle.hook })
	if f.NumShards() != 4 {
		t.Fatalf("follower sized %d shards, want 4", f.NumShards())
	}
	if err := f.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	requireConverged(t, engine, f.Engine(), "bootstrap")
	if oracle.snapshots() == 0 {
		t.Fatal("a follower behind a checkpoint must have bootstrapped via snapshot frames")
	}

	// Read-your-writes: the primary's commit LSN is the follower barrier.
	engine.Put(500, []byte("fresh"))
	shard := engine.ShardOf(500)
	token := engine.ShardLSN(shard)
	if !f.WaitMinLSN(shard, token, 5*time.Second) {
		t.Fatalf("follower never reached LSN %d on shard %d", token, shard)
	}
	if v, ok := f.Engine().Get(500); !ok || string(v) != "fresh" {
		t.Fatalf("read-your-writes Get = %q, %v", v, ok)
	}

	// Primary outage: the follower retries through it and catches up when
	// the primary returns — with writes that happened while it was gone.
	// Taking the host down only affects new requests; the established
	// streams die with their connections.
	ph.set(nil, nil)
	srv.CloseClientConnections()
	engine.Put(600, []byte("written-during-outage"))
	time.Sleep(30 * time.Millisecond) // let pullers hit the 503 path
	ph.set(engine, nil)
	if err := f.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	requireConverged(t, engine, f.Engine(), "after outage")
	st := f.Stats()
	if st.Reconnects == 0 {
		t.Fatal("outage did not register as reconnects")
	}
	var recs uint64
	for _, sp := range st.Shards {
		recs += sp.Records
	}
	if recs == 0 {
		t.Fatal("follower stats counted no records")
	}

	// WaitMinLSN beyond anything committed must time out, not hang.
	if f.WaitMinLSN(0, f.AppliedLSN(0)+1000, 50*time.Millisecond) {
		t.Fatal("WaitMinLSN reported an uncommitted LSN as reached")
	}
}

// TestOpenRefusesVolatilePrimary: a primary without a WAL has nothing to
// ship; Open must fail loudly, not follow emptiness.
func TestOpenRefusesVolatilePrimary(t *testing.T) {
	engine, err := kvs.NewSharded(2, mkStd)
	if err != nil {
		t.Fatal(err)
	}
	ph := &primaryHost{}
	ph.set(engine, nil)
	srv := httptest.NewServer(ph)
	defer srv.Close()
	if _, err := Open(Config{Primary: srv.URL}); err == nil {
		t.Fatal("Open against a volatile primary succeeded")
	}
	// And the stream endpoint itself 409s.
	resp, err := http.Get(srv.URL + "/repl/stream?shard=0&from=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("volatile stream status %d, want 409", resp.StatusCode)
	}
}

// TestStreamRejectsBadParams pins the 400s.
func TestStreamRejectsBadParams(t *testing.T) {
	_, url, _ := startPrimary(t, t.TempDir(), 2, mkStd)
	for _, q := range []string{"shard=9&from=1", "shard=-1&from=1", "shard=x&from=1", "shard=0&from=0", "shard=0&from=x"} {
		resp, err := http.Get(url + "/repl/stream?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("stream?%s status %d, want 400", q, resp.StatusCode)
		}
	}
}
