package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	_ "github.com/bravolock/bravo/internal/locks/all"
)

func TestReplPointValidation(t *testing.T) {
	cfg := Config{Interval: time.Millisecond, Runs: 1}
	if _, err := ReplPoint("bravo-go", 2, 0, 2, 64, 64, 0, cfg); err == nil {
		t.Fatal("zero followers accepted")
	}
	if _, err := ReplPoint("bravo-go", 2, 1, 2, 1, 64, 0, cfg); err == nil {
		t.Fatal("batch < 2 accepted")
	}
	if _, err := ReplPoint("no-such-lock", 2, 1, 2, 64, 64, 0, cfg); err == nil {
		t.Fatal("unknown lock accepted")
	}
}

// TestReplSweepSmoke runs a tiny deployment end to end: primary over TCP,
// a follower, paced writes, lag sampling, convergence, and a
// JSON-marshalable report with the follower axis present.
func TestReplSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a primary+follower deployment per point")
	}
	cfg := Config{Interval: 60 * time.Millisecond, Runs: 1}
	results, err := ReplSweep([]string{"bravo-go"}, []int{2}, []int{1, 2}, 2, 16, 32, 8192, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("sweep returned %d results, want 2", len(results))
	}
	for _, r := range results {
		if r.ReadsPerSec <= 0 || r.WriteKeysPerSec <= 0 {
			t.Fatalf("degenerate result %+v", r)
		}
		// A fresh follower behind the prefill checkpoint bootstraps via
		// one snapshot frame per shard.
		if r.SnapshotFrames != uint64(r.Followers*r.Shards) {
			t.Fatalf("snapshot frames %d, want %d", r.SnapshotFrames, r.Followers*r.Shards)
		}
	}
	var buf bytes.Buffer
	rep := NewReplReport(cfg, 16, results)
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ReplReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmark != "repl" || len(back.Results) != 2 || back.Results[1].Followers != 2 {
		t.Fatalf("report round-trip %+v", back)
	}
}
