package bias

import (
	"sync/atomic"
	"unsafe"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/xrand"
)

// Engine is the biasing protocol of Listing 1, extracted from any one lock:
// the RBias word, the table publish/recheck/undo fast-path prefix, the
// revocation scan with its policy feedback, and optional event counters.
// A lock implementation embeds an Engine by value, configures it before
// first use (Set* then Init), and drives it from its own acquisition paths:
//
//	read:    TryFast / TryFastH  →  on failure, substrate read lock, then MaybeEnable
//	unread:  ReleaseFastAt / ReleaseFast  →  otherwise substrate read unlock
//	write:   substrate write lock  →  RevokeIfEnabled
//
// The engine's own address is the lock identity published in table slots
// (slot values are compared, never dereferenced), so an Engine must not be
// copied after first use.
type Engine struct {
	rbias atomic.Uint32
	// epoch counts bias enablements. Reader handles that diverted on a slot
	// collision remember the epoch and retry their home slot only after the
	// next flip, so a steadily-colliding reader costs one branch, not one
	// failing CAS, per acquisition.
	epoch  atomic.Uint32
	table  *Table
	policy Policy
	stats  *Stats
	// inhibitN, when set, tunes (not replaces) an InhibitPolicy; it is
	// remembered so SetInhibitN and SetPolicy compose in either order.
	inhibitN int64
	// adaptor, when set, gates bias enablement by mode. It is a separate
	// field consulted alongside the policy — never a policy replacement —
	// so SetAdaptive composes with SetPolicy/SetInhibitN in any order.
	adaptor    *Adaptor
	probe2     bool
	randomized bool
}

// ID returns the lock identity installed in table slots.
func (e *Engine) ID() uintptr { return uintptr(unsafe.Pointer(e)) }

// SetTable directs fast-path publication at a specific visible readers
// table. Configuration-time only.
func (e *Engine) SetTable(t *Table) {
	if t != nil {
		e.table = t
	}
}

// SetPolicy installs a bias-enabling policy. A previously requested
// inhibit multiplier is applied if the policy accepts one, so SetPolicy and
// SetInhibitN compose in either order. Configuration-time only.
func (e *Engine) SetPolicy(p Policy) {
	if p == nil {
		return
	}
	e.policy = p
	if ip, ok := p.(*InhibitPolicy); ok && e.inhibitN > 0 {
		ip.N = e.inhibitN
	}
}

// SetInhibitN tunes the paper's N multiplier (worst-case writer slow-down
// ≈ 1/(N+1)). It adjusts the installed policy when that policy is an
// InhibitPolicy, and is remembered for the default policy otherwise — it
// never replaces a policy installed with SetPolicy. The adjustment writes
// through the installed policy value, which is per-lock by the Policy
// contract: do not share one InhibitPolicy between locks and tune it on
// one of them. Configuration-time only.
func (e *Engine) SetInhibitN(n int64) {
	if n <= 0 {
		return
	}
	e.inhibitN = n
	if ip, ok := e.policy.(*InhibitPolicy); ok {
		ip.N = n
	}
}

// SetAdaptive attaches a mode adaptor. Like SetInhibitN, it tunes and never
// replaces the enable policy: the adaptor is consulted as an additional gate
// in MaybeEnable and fed revocation costs from Revoke, while the installed
// Policy (and any remembered inhibit multiplier) stays in force for windows
// where bias is allowed. SetAdaptive therefore composes with SetPolicy and
// SetInhibitN in any call order. Configuration-time only.
func (e *Engine) SetAdaptive(a *Adaptor) {
	if a != nil {
		e.adaptor = a
	}
}

// AdaptorInUse returns the attached mode adaptor, or nil.
func (e *Engine) AdaptorInUse() *Adaptor { return e.adaptor }

// SetStats attaches an event counter set. Counting adds shared-memory
// traffic; leave unset for performance runs. Configuration-time only.
func (e *Engine) SetStats(s *Stats) { e.stats = s }

// SetSecondProbe enables a secondary table probe before a colliding reader
// falls back to the slow path (§7). Configuration-time only.
func (e *Engine) SetSecondProbe() { e.probe2 = true }

// SetRandomizedIndex selects non-deterministic slot indices (§7: "using
// time or random numbers to form indices"). Randomization defeats slot
// caching, so reader handles take the hashing path on such engines.
// Configuration-time only.
func (e *Engine) SetRandomizedIndex() { e.randomized = true }

// Init fills configuration defaults — the shared process-wide table and the
// paper's inhibit policy — and must be called once, after any Set* calls
// and before the engine is used.
func (e *Engine) Init() {
	if e.table == nil {
		e.table = shared
	}
	if e.policy == nil {
		e.policy = NewInhibitPolicy(e.inhibitN)
	}
}

// Table returns the visible readers table this engine publishes into.
func (e *Engine) Table() *Table { return e.table }

// PolicyInUse returns the installed bias-enabling policy.
func (e *Engine) PolicyInUse() Policy { return e.policy }

// StatsInUse returns the attached counters, or nil.
func (e *Engine) StatsInUse() *Stats { return e.stats }

// SecondProbe reports whether the secondary probe is enabled.
func (e *Engine) SecondProbe() bool { return e.probe2 }

// Randomized reports whether slot indices are randomized.
func (e *Engine) Randomized() bool { return e.randomized }

// Enabled reports whether reader bias is currently set.
func (e *Engine) Enabled() bool { return e.rbias.Load() == 1 }

// Epoch returns the bias-enable generation counter.
func (e *Engine) Epoch() uint32 { return e.epoch.Load() }

// NoteDisabled records a slow read taken because bias was off.
func (e *Engine) NoteDisabled() {
	if e.stats != nil {
		e.stats.SlowDisabled.Add(1)
	}
}

func (e *Engine) noteFast() {
	if e.stats != nil {
		e.stats.FastRead.Add(1)
	}
}

func (e *Engine) noteRaced() {
	if e.stats != nil {
		e.stats.SlowRaced.Add(1)
	}
}

func (e *Engine) noteCollision() {
	if e.stats != nil {
		e.stats.SlowCollision.Add(1)
	}
}

func (e *Engine) noteHandle() {
	if e.stats != nil {
		e.stats.SlowHandle.Add(1)
	}
}

// TryFast attempts the complete fast-path read prefix for an anonymous
// reader identified by selfID: the RBias check, then publication. It is the
// handle-free Listing 1 lines 10–23; callers that failed must acquire read
// permission on the substrate and then call MaybeEnable.
func (e *Engine) TryFast(selfID uint64) (SlotToken, bool) {
	if e.rbias.Load() != 1 {
		e.NoteDisabled()
		return 0, false
	}
	return e.TryPublish(selfID)
}

// TryPublish runs the publication half of the fast path (Listing 1 lines
// 11–23) for a reader identified by selfID: hash, CAS, optional second
// probe, RBias recheck, undo on race. The caller must have observed
// Enabled(). On success the returned token must be passed to ClearFast at
// read-unlock time.
func (e *Engine) TryPublish(selfID uint64) (SlotToken, bool) {
	id := e.ID()
	if e.randomized {
		selfID = xrand.NewSplitMix64(uint64(clock.Nanos()) ^ selfID).Next()
	}
	if tok, ok, done := e.publishAt(e.table.Index(id, selfID)); done {
		return tok, ok
	}
	if e.probe2 {
		if tok, ok, done := e.publishAt(e.table.Index2(id, selfID)); done {
			return tok, ok
		}
	}
	e.noteCollision()
	return 0, false
}

// publishAt CASes the engine identity into slot idx and rechecks RBias.
// done is false only when the slot was occupied (the caller may probe
// elsewhere); on a recheck race the publication is undone and the read is
// committed to the slow path (done true, ok false).
func (e *Engine) publishAt(idx uint32) (_ SlotToken, ok, done bool) {
	gen, won := e.table.TryPublishAt(idx, e.ID())
	if !won {
		return 0, false, false
	}
	// Store-load fence required on TSO — subsumed by the CAS, and in Go by
	// the sequentially consistent atomics.
	if e.rbias.Load() == 1 { // recheck (Listing 1 line 16)
		e.noteFast()
		return makeSlotToken(idx, gen), true, true
	}
	// Raced: a writer revoked bias after our publication; undo. The undo is
	// an owned clear like any other, keeping the generation invariant.
	e.table.ClearOwned(idx, gen, e.ID())
	e.noteRaced()
	return 0, false, true
}

// ClearFast releases a fast-path read acquisition made with TryFast or
// TryPublish. The token's generation is verified against the slot (the
// always-on unbalanced-unlock guard): a double RUnlock or an unlock of a
// token belonging to another lock panics deterministically instead of
// silently corrupting the visible-readers table.
func (e *Engine) ClearFast(t SlotToken) {
	e.table.ClearOwned(t.Index(), t.Gen(), e.ID())
}

// MaybeEnable is called by a slow-path reader while it holds read
// permission on the substrate — the only state in which bias may be set
// (Listing 1 lines 25–26, which excludes writers) — and asks the policy
// whether to (re-)enable bias.
func (e *Engine) MaybeEnable() {
	if e.adaptor != nil && !e.adaptor.AllowBias() {
		return
	}
	if e.rbias.Load() == 0 && e.policy.ShouldEnable() {
		if e.rbias.CompareAndSwap(0, 1) {
			e.epoch.Add(1)
		}
	}
}

// Revoke disables reader bias and waits for all fast-path readers of this
// engine to depart (Listing 1 lines 38–49). The caller must hold write
// permission on the substrate.
func (e *Engine) Revoke() {
	e.rbias.Store(0)
	// Store-load fence required on TSO — Go atomics are seq-cst.
	start := clock.Nanos()
	scanned, conflicts := e.table.WaitEmpty(e.ID())
	now := clock.Nanos()
	// Primum non-nocere: limit and bound the slow-down arising from
	// revocation overheads.
	e.policy.RevocationDone(start, now)
	if e.adaptor != nil {
		e.adaptor.NoteRevocation(now - start)
	}
	if e.stats != nil {
		e.stats.WriteRevoke.Add(1)
		e.stats.RevokeNanos.Add(now - start)
		e.stats.RevokeScanned.Add(uint64(scanned))
		e.stats.RevokeWaits.Add(uint64(conflicts))
	}
}

// RevokeIfEnabled performs revocation when bias is set, recording a
// no-revocation write otherwise. It is the writer's post-acquisition step
// (Listing 1, Writer).
func (e *Engine) RevokeIfEnabled() bool {
	if e.rbias.Load() == 1 {
		e.Revoke()
		return true
	}
	if e.stats != nil {
		e.stats.WriteNormal.Add(1)
	}
	return false
}

// forceBias sets or clears the RBias word directly, bypassing policy and
// revocation. Test hook: used to reproduce the publish/recheck race windows
// deterministically.
func (e *Engine) forceBias(enabled bool) {
	if enabled {
		e.rbias.Store(1)
	} else {
		e.rbias.Store(0)
	}
}
