package kvs

// The write-ahead log: each shard owns an append-only log file, and every
// mutating operation appends one CRC-framed record — containing the whole
// per-shard batch — before applying it to the in-memory map. Group commit
// is the point: the per-shard groups that MultiPut/MultiDelete already form
// (forEachShardGroup) and the batches the async queue already detaches
// become ONE log record and, under SyncAlways, ONE fsync, so the dominant
// slow-path cost is amortized across the batch exactly the way BRAVO
// amortizes bias revocation across the reads that follow it. A lone Put
// pays a full fsync; a 64-key batch pays 1/64th of one per key.
//
// Ordering: a shard's WAL mutex is held across append+fsync+apply, so the
// log's record order IS the apply order and replay reconstructs exactly the
// state the maps held. Readers never touch the WAL mutex — the BRAVO read
// fast path stays one CAS even while a batch is being synced.
//
// Record format v2 (all integers little-endian, fixed width):
//
//	record  := u32 payloadLen | u32 crc32c(payload) | payload
//	payload := u8 version(=2) | u64 lsn | u32 count | count × entry
//	entry   := u8 opPut    | u64 key | u32 vlen | vlen bytes
//	         | u8 opPutTTL | u64 key | i64 remainingNanos | u32 vlen | vlen bytes
//	         | u8 opDelete | u64 key
//
// The LSN is a per-shard log sequence number, stamped under the WAL mutex
// so it increases by exactly one per committed record — the replication
// stream's resume token (see repl.go) and the read-your-writes token kvserv
// hands back on writes. Version-1 payloads (no LSN field) still decode:
// replay synthesizes sequential LSNs for them, so a pre-LSN directory
// upgrades in place on its first reopen and new records continue the
// sequence. Version 3 is the same layout as v2 but marks a full-state
// snapshot record; it appears only on the replication wire, never on disk.
//
// Version 4 is the multi-shard transaction witness record:
//
//	payload := u8 version(=4) | u64 lsn | u32 nparts
//	         | nparts × (u32 shard | u64 lsn) | u32 count | count × entry
//
// appended once per participant shard at that shard's own LSN; appliers
// keep only the entries whose keys hash to their shard (see walVersionTxn).
//
// TTL deadlines are persisted as *remaining* nanoseconds at append time,
// not absolute deadlines: the process clock (internal/clock) has a
// per-process epoch, so absolute values are meaningless across restarts.
// Replay re-anchors them at recovery time — a TTL clock effectively pauses
// while the store is down, and never fires early.
//
// Replay is prefix-consistent by construction: decoding stops at the first
// record whose header is short, whose length is insane, whose CRC
// mismatches, or whose payload is structurally malformed, and reports the
// byte offset of the last fully-valid record so the opener can truncate the
// torn tail before appending new records after it. A record is applied only
// after its payload decodes completely — a torn or corrupt tail can lose
// the suffix, never corrupt a key or value.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"github.com/bravolock/bravo/internal/clock"
	"github.com/bravolock/bravo/internal/frame"
)

// SyncPolicy selects when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncNone never fsyncs: records are written to the file (and survive a
	// process crash) but an OS crash can lose the tail the kernel had not
	// flushed. The cheapest durable mode.
	SyncNone SyncPolicy = iota
	// SyncAlways fsyncs once per appended record — which, with group
	// commit, is once per shard batch, not once per key.
	SyncAlways
)

// String returns the flag spelling of p.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses a -sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "none":
		return SyncNone, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("kvs: sync policy %q (want none or always)", s)
}

const (
	// walVersion1 is the legacy pre-LSN payload layout, still decoded (with
	// synthesized LSNs) so existing directories upgrade in place.
	walVersion1 = 1
	// walVersion is the current on-disk payload layout: LSN-stamped.
	walVersion = 2
	// walVersionSnap marks a full-state snapshot record at its LSN. It is a
	// replication wire format only: a decoder may see it in a stream, the
	// appender never writes it to a log file.
	walVersionSnap = 3
	// walVersionTxn marks a multi-shard transaction commit record. The same
	// record — all of the transaction's entries, across every participant
	// shard — is appended once to EACH participant's log at that shard's own
	// next LSN, together with the participant list and the LSN each
	// participant assigned. Appliers (recovery, replication) keep only the
	// entries whose keys hash to their own shard, so the cross-shard copies
	// are witnesses, not duplication: if a crash tears the commit so that
	// only some participants' copies reached disk, any surviving copy lets
	// recovery roll the missing participants forward and restore atomicity
	// (see openDurable). v2 logs still load — single-shard transactions
	// commit as plain v2 records and never pay the witness encoding.
	walVersionTxn = 4

	// walHeaderSize is the shared frame envelope's header (internal/frame):
	// u32 payload length + u32 CRC32-C.
	walHeaderSize = frame.HeaderSize

	walOpPut    = 1
	walOpPutTTL = 2
	walOpDelete = 3
)

// errWALClosed reports an append attempted after Close.
var errWALClosed = errors.New("kvs: write-ahead log is closed")

// shardWAL is one shard's log. mu serializes append+fsync+apply (writers
// and checkpoints take it before the shard lock; readers never take it), so
// record order is apply order. It is nil on volatile engines — the lock and
// log* methods are nil-receiver no-ops so the write paths stay branchless
// apart from one nil check.
type shardWAL struct {
	mu     sync.Mutex
	f      *os.File
	policy SyncPolicy
	buf    []byte // record scratch, reused under mu
	// size is the file length up to the last fully-written record; a
	// partial write rolls back to it (see commit) so no record is ever
	// appended beyond torn bytes, where replay could not reach it.
	size   int64
	closed bool
	err    error // first write/sync error; the engine stays available in memory
	// lsn is the LSN of the last committed record (guarded by mu); begin
	// stamps lsn+1 and a successful commit advances it, so a failed append
	// reuses its LSN for the retry and the log never has holes.
	lsn uint64

	// applied publishes lsn after the record's entries are applied to the
	// shard map (see unlock): the lock-free answer to "what LSN does a read
	// against this shard observe", read by ShardLSN and /repl/status.
	applied atomic.Uint64
	// gen is a seqlock over the log files: rotate (holding mu) bumps it to
	// odd on entry and back to even on exit, so the files are stable
	// exactly when gen is even. Replication readers sample it around
	// their lockless file reads — an even, unchanged gen brackets a read
	// no rotation overlapped; odd, or changed, means retry. A single bump
	// would miss a rotation already in flight when the read starts.
	gen atomic.Uint64

	records atomic.Uint64
	keys    atomic.Uint64
	syncs   atomic.Uint64
	bytes   atomic.Uint64
	errs    atomic.Uint64
}

// lock acquires the WAL mutex; no-op without a WAL.
func (w *shardWAL) lock() {
	if w != nil {
		w.mu.Lock()
	}
}

// unlock publishes the applied LSN and releases the WAL mutex; no-op
// without a WAL. The write paths call it after the record's entries are in
// the shard map, so applied never names a record whose effects a read
// could still miss.
func (w *shardWAL) unlock() {
	if w != nil {
		w.applied.Store(w.lsn)
		w.mu.Unlock()
	}
}

// begin starts a record of count entries in the scratch buffer, stamped
// with the next LSN. The caller holds mu and follows with addPut/addDelete
// calls, then commit.
func (w *shardWAL) begin(count int) {
	w.buf = w.buf[:0]
	w.buf = append(w.buf, make([]byte, walHeaderSize)...)
	w.buf = append(w.buf, walVersion)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, w.lsn+1)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(count))
}

// beginTxn starts a transaction witness record (walVersionTxn) in the
// scratch buffer, stamped with this shard's next LSN and carrying the full
// participant list. The caller holds mu on EVERY participant's WAL (the
// transaction's lock phase), follows with addPut/addDelete for all of the
// transaction's entries — across all shards — and then commit.
func (w *shardWAL) beginTxn(parts []walPart, count int) {
	w.buf = w.buf[:0]
	w.buf = append(w.buf, make([]byte, walHeaderSize)...)
	w.buf = append(w.buf, walVersionTxn)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, w.lsn+1)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(parts)))
	for _, p := range parts {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, p.shard)
		w.buf = binary.LittleEndian.AppendUint64(w.buf, p.lsn)
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(count))
}

// addPut appends one put entry. A zero deadline is a plain put; a non-zero
// one is encoded as remaining nanoseconds (see the package note).
func (w *shardWAL) addPut(key uint64, value []byte, deadline int64) {
	if deadline == 0 {
		w.buf = append(w.buf, walOpPut)
		w.buf = binary.LittleEndian.AppendUint64(w.buf, key)
	} else {
		w.buf = append(w.buf, walOpPutTTL)
		w.buf = binary.LittleEndian.AppendUint64(w.buf, key)
		w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(deadline-clock.Nanos()))
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(value)))
	w.buf = append(w.buf, value...)
}

// addDelete appends one delete entry.
func (w *shardWAL) addDelete(key uint64) {
	w.buf = append(w.buf, walOpDelete)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, key)
}

// commit frames the pending record (length + CRC over the payload), writes
// it, and fsyncs under SyncAlways. Write and sync failures are recorded
// (first error wins, WALError reports it) rather than propagated: the
// engine keeps serving from memory with durability degraded, the same
// availability-over-durability call redis makes on a failing AOF disk.
func (w *shardWAL) commit(count int) {
	if w.closed {
		w.setErr(errWALClosed)
		return
	}
	frame.Seal(w.buf)
	n, err := w.f.Write(w.buf)
	w.bytes.Add(uint64(n))
	if err != nil {
		w.setErr(err)
		// Roll the file back to the last complete record: replay stops at
		// torn bytes, so anything appended beyond them would be durable in
		// name only. If even the rollback fails, stop appending for good.
		if terr := w.f.Truncate(w.size); terr != nil {
			w.closed = true
		}
		return
	}
	w.size += int64(n)
	w.lsn++
	w.records.Add(1)
	w.keys.Add(uint64(count))
	if w.policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			w.setErr(err)
			return
		}
		w.syncs.Add(1)
	}
}

// setErr records the first failure; the caller holds mu.
func (w *shardWAL) setErr(err error) {
	w.errs.Add(1)
	if w.err == nil {
		w.err = err
	}
}

// rotate makes the current log the "old" generation and starts a fresh
// one: sync, then rename cur → old and reopen cur empty. Called by
// checkpoints with mu held, so no append can interleave with the swap.
//
// If a previous checkpoint died between its rotation and its prune, old
// already exists and still holds records the published snapshot may not
// cover — renaming over it would destroy the only copy of acknowledged
// writes. In that case the current log is *appended* to old and truncated
// in place instead: replay order (snap, old, cur) stays correct, and a
// crash mid-merge only duplicates records that cur still holds, which
// replay applies idempotently in log order.
func (w *shardWAL) rotate(cur, old string) error {
	if w.closed {
		return errWALClosed
	}
	// Seqlock write section: gen is odd for the whole swap (every exit
	// path), so a lockless reader either sees odd — retry — or sees the
	// same even value on both sides of a read no rotation overlapped.
	w.gen.Add(1)
	defer w.gen.Add(1)
	if err := w.f.Sync(); err != nil {
		w.setErr(err)
		return err
	}
	if _, err := os.Stat(old); err == nil {
		if err := appendFile(old, cur); err != nil {
			w.setErr(err)
			return err
		}
		if err := w.f.Truncate(0); err != nil {
			w.closed = true
			w.setErr(err)
			return err
		}
		w.size = 0
		return nil
	} else if !os.IsNotExist(err) {
		w.setErr(err)
		return err
	}
	if err := w.f.Close(); err != nil {
		w.setErr(err)
		return err
	}
	if err := os.Rename(cur, old); err != nil {
		// Try to keep the engine writable on the old file.
		if f, ferr := os.OpenFile(cur, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); ferr == nil {
			w.f = f
		} else {
			w.closed = true
		}
		w.setErr(err)
		return err
	}
	f, err := os.OpenFile(cur, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		w.closed = true
		w.setErr(err)
		return err
	}
	w.f = f
	w.size = 0
	return nil
}

// appendFile appends src's contents to dst and fsyncs dst.
func appendFile(dst, src string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(dst, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// walEntry is one decoded log (or snapshot) entry. val aliases the decode
// buffer; recovery copies it into the shard map via putLocked.
type walEntry struct {
	op  byte
	key uint64
	rem int64 // opPutTTL: remaining nanoseconds at append time
	val []byte
}

// walPart names one participant of a multi-shard transaction record: the
// shard and the LSN that shard assigned to its copy of the record.
type walPart struct {
	shard uint32
	lsn   uint64
}

// walRecord is one decoded record: its payload version (distinguishing
// snapshot stream records from incremental ones), its LSN (zero for legacy
// v1 payloads, which carry none), and its entries. Transaction records
// (walVersionTxn) also carry the participant list; parts is nil otherwise.
type walRecord struct {
	version byte
	lsn     uint64
	parts   []walPart
	entries []walEntry
}

// txnKey identifies a transaction across its per-shard witness copies: the
// first (lowest-shard) participant's (shard, LSN) pair is unique because
// LSNs are assigned under that shard's WAL mutex.
func (r *walRecord) txnKey() walPart {
	return r.parts[0]
}

// frame-splitting outcomes, aliased from the shared codec so the WAL's
// torn-tail vocabulary reads locally.
const (
	frameOK         = frame.OK         // a complete, CRC-valid record
	frameIncomplete = frame.Incomplete // data ends inside the header or payload
	frameCorrupt    = frame.Corrupt    // full length available but CRC or size insane
)

// splitFrame examines the record at the head of data through the shared
// codec (internal/frame — the WAL, the replication stream, and the binary
// wire all carry the same envelope). Log replay treats frameIncomplete and
// frameCorrupt both as the torn-tail stop; stream consumers reconnect only
// on frameCorrupt.
func splitFrame(data []byte) (payload []byte, n int, status frame.Status) {
	return frame.Split(data)
}

// walReplay decodes records from data, invoking apply once per fully-valid
// record, and returns the byte offset just past the last valid record plus
// the highest LSN seen. Decoding stops — without applying anything from
// the bad record — at the first short header, oversize length, CRC
// mismatch, or malformed payload: the torn-tail rule. Legacy v1 records
// carry no LSN; they are assigned sequential LSNs continuing from last, so
// a pre-LSN log upgrades in place. Snapshot-version records never appear
// in log files and stop replay like corruption. It never panics, whatever
// the bytes (FuzzWALReplay).
func walReplay(data []byte, last uint64, apply func(rec walRecord)) (valid int, lastLSN uint64) {
	off := 0
	for {
		payload, n, status := splitFrame(data[off:])
		if status != frameOK {
			return off, last
		}
		rec, ok := walDecodePayload(payload)
		if !ok || rec.version == walVersionSnap {
			return off, last
		}
		if rec.version == walVersion1 {
			rec.lsn = last + 1
		}
		apply(rec)
		if rec.lsn > last {
			last = rec.lsn
		}
		off += n
	}
}

// walDecodePayload parses one record payload, strictly: every entry must
// parse and the payload must end exactly at the last one.
func walDecodePayload(p []byte) (walRecord, bool) {
	var rec walRecord
	if len(p) < 1 {
		return rec, false
	}
	rec.version = p[0]
	off := 1
	switch rec.version {
	case walVersion1:
	case walVersion, walVersionSnap:
		if len(p) < 1+8 {
			return rec, false
		}
		rec.lsn = binary.LittleEndian.Uint64(p[1:])
		off = 9
	case walVersionTxn:
		if len(p) < 1+8+4 {
			return rec, false
		}
		rec.lsn = binary.LittleEndian.Uint64(p[1:])
		nparts := int(binary.LittleEndian.Uint32(p[9:]))
		off = 13
		// A witness record exists only for multi-shard commits, each
		// participant entry is 12 bytes, and the list is canonical: shards
		// strictly ascending, LSNs nonzero. Anything else is malformed, not
		// merely unusual — the strictness is what lets the fuzzers prove
		// the decoder total. The record's own LSN normally equals its
		// shard's entry in the list, but a recovery roll-forward re-appends
		// a witness at whatever LSN the repaired shard actually reached, so
		// that is a convention, not a rule the decoder can enforce.
		if nparts < 2 || nparts > (len(p)-off)/12 {
			return rec, false
		}
		parts := make([]walPart, nparts)
		for i := range parts {
			parts[i] = walPart{
				shard: binary.LittleEndian.Uint32(p[off:]),
				lsn:   binary.LittleEndian.Uint64(p[off+4:]),
			}
			off += 12
			if parts[i].lsn == 0 || (i > 0 && parts[i].shard <= parts[i-1].shard) {
				return rec, false
			}
		}
		rec.parts = parts
	default:
		return rec, false
	}
	if len(p)-off < 4 {
		return rec, false
	}
	count := int(binary.LittleEndian.Uint32(p[off:]))
	off += 4
	// Each entry is at least 9 bytes; anything claiming more is malformed,
	// and the bound keeps the preallocation honest on adversarial input.
	if count < 0 || count > (len(p)-off)/9 {
		return rec, false
	}
	entries := make([]walEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(p)-off < 9 {
			return rec, false
		}
		e := walEntry{op: p[off], key: binary.LittleEndian.Uint64(p[off+1:])}
		off += 9
		switch e.op {
		case walOpDelete:
		case walOpPut, walOpPutTTL:
			if e.op == walOpPutTTL {
				if len(p)-off < 8 {
					return rec, false
				}
				e.rem = int64(binary.LittleEndian.Uint64(p[off:]))
				off += 8
			}
			if len(p)-off < 4 {
				return rec, false
			}
			vlen := int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
			if vlen < 0 || vlen > len(p)-off {
				return rec, false
			}
			e.val = p[off : off+vlen]
			off += vlen
		default:
			return rec, false
		}
		entries = append(entries, e)
	}
	rec.entries = entries
	return rec, off == len(p)
}

// deadlineFromRemaining re-anchors a persisted remaining-nanoseconds value
// on the current process clock. Overflow saturates to "never" the way
// ttlDeadline does, and the result avoids 0, which putLocked reserves for
// "no TTL" — an entry that lands exactly on 0 is long expired anyway.
func deadlineFromRemaining(rem int64) int64 {
	now := clock.Nanos()
	d := now + rem
	if rem > 0 && d < now {
		return math.MaxInt64
	}
	if d == 0 {
		return -1
	}
	return d
}
