// Package cliutil holds small helpers shared by the cmd binaries.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseInts parses a comma-separated list of integers ("1,2,5,10").
func ParseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty integer list")
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseNames parses a comma-separated list of names.
func ParseNames(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
