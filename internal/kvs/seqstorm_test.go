package kvs

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/rwl"
)

// The read-path race storm: optimistic seqlock readers running flat out
// against every mutation site the engine has — Put, PutTTL, MultiPut,
// Delete, MultiDelete, the async queue's flush, Reap, checkpoints, and
// ApplyReplRecord — under the race detector. Values are self-validating
// (see stormValue): every 8-byte word carries the key, the word count, and
// a generation stamp, so a torn copy, a cross-key splice, or a stale
// half-update decodes as garbage instead of passing silently.
//
// Mutant exercise (run once while building this storm, then deleted, per
// the certification plan): a temporary test took a shard's *substrate*
// write lock via the wrapper's Under() escape hatch and called putLocked
// directly — a mutation with the lock held but WITHOUT the seq bump, i.e.
// a writer that "forgot" the bracketing invariant. The storm's readers
// caught it immediately: stormCheck reported mixed-generation words within
// a few milliseconds on every run (8/8 locally), because optimistic copies
// of the half-written cell validated against a counter the mutant never
// moved. That demonstrated the storm actually detects a missed bump; the
// mutant writer was then removed so the tree stays invariant-clean. If you
// change the bracketing (rwl.WrapOptimistic, seqStore mutators), rerun the
// exercise: take sh.lock.(interface{ Under() rwl.RWLock }).Under(), call
// putLocked under it with fixed-size values (in-place rewrites give readers
// the widest torn-copy window), and make sure this storm goes red before
// trusting the change.

// stormKeys is the shared hot key space every storm goroutine hammers.
const stormKeys = 128

// stormValue builds a self-validating value for key: 1–4 words, each the
// identical stamp key<<48 | nwords<<40 | gen&0xffffffffff.
func stormValue(key, gen uint64) []byte {
	nw := 1 + int(gen%4)
	stamp := key<<48 | uint64(nw)<<40 | gen&0xffffffffff
	v := make([]byte, nw*8)
	for i := 0; i < nw; i++ {
		binary.LittleEndian.PutUint64(v[i*8:], stamp)
	}
	return v
}

// stormCheck verifies that v is exactly some value stormValue ever produced
// for key — never a splice of two writes or another key's payload.
func stormCheck(key uint64, v []byte) error {
	if len(v) == 0 || len(v)%8 != 0 {
		return fmt.Errorf("key %d: value length %d not a positive multiple of 8", key, len(v))
	}
	stamp := binary.LittleEndian.Uint64(v)
	if got := stamp >> 48; got != key {
		return fmt.Errorf("key %d: stamp carries key %d (cross-key splice)", key, got)
	}
	if nw := int(stamp >> 40 & 0xff); nw*8 != len(v) {
		return fmt.Errorf("key %d: stamp declares %d words, value has %d bytes (torn length)", key, nw, len(v))
	}
	for i := 8; i < len(v); i += 8 {
		if w := binary.LittleEndian.Uint64(v[i:]); w != stamp {
			return fmt.Errorf("key %d: word %d is %x, word 0 is %x (torn copy)", key, i/8, w, stamp)
		}
	}
	return nil
}

// stormReaders launches nReaders goroutines that hit the optimistic read
// path through every reader shape — Get, GetInto with a reused buffer,
// MultiGet, and their handle variants — validating every hit, until stop.
// Returns the WaitGroup the caller waits on after setting stop.
func stormReaders(t *testing.T, s *Sharded, nReaders int, stop *atomic.Bool) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := rwl.NewReader()
			buf := make([]byte, 0, 64)
			batch := make([]uint64, 8)
			for i := uint64(r); !stop.Load(); i++ {
				// Yield every lap: on small GOMAXPROCS a flat-out reader loop
				// starves the writers the storm exists to collide with.
				runtime.Gosched()
				k := i % stormKeys
				var v []byte
				var ok bool
				switch i % 4 {
				case 0:
					v, ok = s.Get(k)
				case 1:
					v, ok = s.GetH(h, k)
				case 2:
					v, ok = s.GetInto(k, buf)
					buf = v[:0]
				case 3:
					for j := range batch {
						batch[j] = (k + uint64(j)) % stormKeys
					}
					var vals [][]byte
					if r%2 == 0 {
						vals = s.MultiGet(batch)
					} else {
						vals = s.MultiGetH(h, batch)
					}
					for j, bv := range vals {
						if bv == nil {
							continue
						}
						if err := stormCheck(batch[j], bv); err != nil {
							t.Error(err)
							stop.Store(true)
						}
					}
					continue
				}
				if !ok {
					continue // deleted/expired/not-yet-written: a miss is always legal
				}
				if err := stormCheck(k, v); err != nil {
					t.Error(err)
					stop.Store(true)
				}
			}
		}(r)
	}
	return &wg
}

// stormMutators runs the write-side mix for iters rounds: direct puts and
// TTL puts, batched puts, deletes single and batched, async puts with
// flushes, and the reaper. gen seeds the generation counter so engine
// variants never reuse stamps.
func stormMutators(t *testing.T, s *Sharded, iters int, gen *atomic.Uint64) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	spawn := func(fn func(i uint64)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn(uint64(i))
			}
		}()
	}
	spawn(func(i uint64) { // Put / PutTTL
		k := i % stormKeys
		if i%5 == 0 {
			s.PutTTL(k, stormValue(k, gen.Add(1)), time.Hour)
		} else {
			s.Put(k, stormValue(k, gen.Add(1)))
		}
	})
	spawn(func(i uint64) { // MultiPut, batches of 8
		keys := make([]uint64, 8)
		vals := make([][]byte, 8)
		for j := range keys {
			k := (i*3 + uint64(j)) % stormKeys
			keys[j] = k
			vals[j] = stormValue(k, gen.Add(1))
		}
		s.MultiPut(keys, vals)
	})
	spawn(func(i uint64) { // Delete / MultiDelete
		if i%3 == 0 {
			s.MultiDelete([]uint64{i % stormKeys, (i + 7) % stormKeys})
		} else {
			s.Delete((i * 5) % stormKeys)
		}
	})
	spawn(func(i uint64) { // async queue + flush
		k := (i * 11) % stormKeys
		s.PutAsync(k, stormValue(k, gen.Add(1)))
		if i%16 == 0 {
			s.Flush()
		}
	})
	spawn(func(i uint64) { // born-expired entries + the reaper
		if i%4 == 0 {
			k := (i * 13) % stormKeys
			s.putDeadline(k, stormValue(k, gen.Add(1)), -1)
		}
		if i%8 == 0 {
			s.Reap(32)
		}
	})
	return &wg
}

// runSeqStorm drives readers against the full mutator mix on s, plus any
// engine-specific extra mutator, and asserts the optimistic path actually
// served traffic.
func runSeqStorm(t *testing.T, s *Sharded, iters int, gen *atomic.Uint64, extra func(i uint64)) {
	t.Helper()
	var stop atomic.Bool
	readers := stormReaders(t, s, 4, &stop)
	writers := stormMutators(t, s, iters, gen)
	if extra != nil {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < iters; i++ {
				extra(uint64(i))
			}
		}()
	}
	writers.Wait()
	stop.Store(true)
	readers.Wait()
	st := s.Stats().Total()
	if st.SeqReads == 0 {
		t.Fatal("storm never served an optimistic read; the path under test was idle")
	}
	t.Logf("storm: %d seq reads, %d retries, %d fallbacks", st.SeqReads, st.SeqRetries, st.SeqFallbacks)
}

// stormIters sizes the write side. Sized for the race detector on small
// machines: the point is collision coverage, not throughput, and the
// readers spin the whole time regardless.
func stormIters(t *testing.T) int {
	if testing.Short() {
		return 120
	}
	return 600
}

// TestSeqReadStormVolatile storms a BRAVO-locked volatile engine. Default
// (adaptive) bias policy: a write-heavy storm over AlwaysPolicy would spend
// the whole test in revocation scans instead of read/write collisions.
func TestSeqReadStormVolatile(t *testing.T) {
	s, err := NewSharded(8, mkBravo)
	if err != nil {
		t.Fatal(err)
	}
	var gen atomic.Uint64
	runSeqStorm(t, s, stormIters(t), &gen, nil)
}

// TestSeqReadStormDurable storms a durable engine while a checkpoint loop
// runs: WAL appends, group commit, and snapshot writes all inside the same
// seq brackets the readers validate against.
func TestSeqReadStormDurable(t *testing.T) {
	s := openTestKV(t, t.TempDir(), 4, SyncNone)
	defer s.Close()
	var gen atomic.Uint64
	iters := stormIters(t)
	var stop atomic.Bool
	var ckpt sync.WaitGroup
	ckpt.Add(1)
	go func() {
		defer ckpt.Done()
		for !stop.Load() {
			if err := s.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	runSeqStorm(t, s, iters, &gen, nil)
	stop.Store(true)
	ckpt.Wait()
}

// TestSeqReadStormReplApply storms a volatile follower while replication
// records — including periodic whole-shard snapshot installs — land through
// ApplyReplRecord.
func TestSeqReadStormReplApply(t *testing.T) {
	s, _, _ := newBravoSharded(t, 4)
	var gen atomic.Uint64
	var lsn atomic.Uint64
	runSeqStorm(t, s, stormIters(t), &gen, func(i uint64) {
		k := (i * 17) % stormKeys
		sh := s.ShardOf(k)
		rec := ReplRecord{LSN: lsn.Add(1), Entries: []ReplEntry{
			{Op: ReplPut, Key: k, Value: stormValue(k, gen.Add(1))},
			{Op: ReplDelete, Key: (k + 1) % stormKeys},
		}}
		if i%64 == 0 {
			// Snapshot install: wholesale replacement of the shard under one
			// bracket. Repopulate every key of this shard so readers keep
			// finding stamped values afterwards.
			rec.Snapshot = true
			rec.Entries = rec.Entries[:0]
			for key := uint64(0); key < stormKeys; key++ {
				if s.ShardOf(key) == sh {
					rec.Entries = append(rec.Entries,
						ReplEntry{Op: ReplPut, Key: key, Value: stormValue(key, gen.Add(1))})
				}
			}
		}
		// The delete entry above may name a key of another shard; route the
		// record by its first entry's shard, which is always k's.
		if err := s.ApplyReplRecord(sh, rec); err != nil {
			t.Error(err)
		}
	})
}
