package bias

import (
	"github.com/bravolock/bravo/internal/self"
)

// ReaderSlots bounds the number of locks a reader handle can track at once:
// the per-lock slot cache and the number of simultaneous fast-path holds.
// Real call stacks rarely hold more than a few read locks (the kernel's
// mmap_sem dominates rwsem nesting); excess locks simply divert to the slow
// path, exactly like a table collision.
const ReaderSlots = 8

// Reader is a per-goroutine reader handle: a pinned identity plus a
// per-lock cache of the last fast-path slot. The paper's fast path is
// Hash(L, Self) + one CAS, and its §5.2 analysis attributes BRAVO's wins to
// readers re-hitting the same slot; a handle exploits that stability by
// paying the identity derivation and the hash once, so a steady-state read
// is a single CAS at the cached index.
//
// Each cache entry also remembers collisions (a diverted reader retries its
// home slot only after bias flips, see Engine.epoch) and records
// outstanding holds, which is what lets the release path detect unbalanced
// read-unlocks — the per-acquirer bookkeeping role the POSIX per-thread
// held-lock lists play in §3 and the kernel's per-task state plays in §4.
//
// A Reader is confined to one goroutine (or one request, handed along its
// processing chain); its methods and the handle-accepting lock paths that
// take it are not safe for concurrent use of the same Reader.
type Reader struct {
	id uint64
	// untracked counts slow-path acquisitions that could not be recorded
	// because every entry was pinned by an outstanding hold; releases drain
	// it before an unbalanced-unlock verdict.
	untracked uint32
	// hand is the round-robin eviction cursor.
	hand    uint32
	entries [ReaderSlots]readerEntry
}

// entry flags.
const (
	entFastHeld = 1 << iota // a fast-path acquisition at slot is outstanding
	entDiverted             // collided at epoch; slow-path until bias flips
)

// readerEntry caches one lock's fast-path state on a handle.
type readerEntry struct {
	eng   *Engine
	slot  uint32
	epoch uint32
	// gen is the slot generation captured by the outstanding fast-path
	// publication (meaningful while entFastHeld is set); the release hands
	// it to ClearOwned so an unbalanced unlock is caught at the table too.
	gen      uint32
	flags    uint8
	slowHeld uint8 // outstanding slow-path acquisitions (saturating)
}

// NewReader returns a handle with a fresh pinned identity.
func NewReader() *Reader {
	return &Reader{id: self.NextExplicitID()}
}

// NewReaderWithID returns a handle with an explicit identity, for callers
// that need the (lock, reader) → slot mapping to be reproducible
// (benchmark workers, collision tests).
func NewReaderWithID(id uint64) *Reader {
	r := MakeReader(id)
	return &r
}

// MakeReader returns a by-value handle for embedding (see rwsem.Task).
func MakeReader(id uint64) Reader {
	return Reader{id: id}
}

// ID returns the pinned reader identity.
func (r *Reader) ID() uint64 { return r.id }

// Held returns the number of outstanding fast-path holds across all locks.
func (r *Reader) Held() int {
	n := 0
	for i := range r.entries {
		if r.entries[i].eng != nil && r.entries[i].flags&entFastHeld != 0 {
			n++
		}
	}
	return n
}

// lookup returns the cache entry for e, or nil.
func (r *Reader) lookup(e *Engine) *readerEntry {
	for i := range r.entries {
		if r.entries[i].eng == e {
			return &r.entries[i]
		}
	}
	return nil
}

// alloc returns a fresh entry for e, evicting an unpinned entry if needed;
// nil when every entry has an outstanding hold. The new entry's slot is the
// home slot — the one hash this handle ever pays for e in the common case.
func (r *Reader) alloc(e *Engine) *readerEntry {
	var victim *readerEntry
	for i := range r.entries {
		if r.entries[i].eng == nil {
			victim = &r.entries[i]
			break
		}
	}
	if victim == nil {
		// Round-robin over evictable (hold-free) entries so one hot lock
		// cannot permanently starve the rest of the cache.
		for i := 0; i < ReaderSlots; i++ {
			c := &r.entries[r.hand%ReaderSlots]
			r.hand++
			if c.flags&entFastHeld == 0 && c.slowHeld == 0 {
				victim = c
				break
			}
		}
		if victim == nil {
			return nil
		}
	}
	*victim = readerEntry{eng: e, slot: e.table.Index(e.ID(), r.id)}
	return victim
}

// TryFastH attempts the complete fast-path read prefix for handle r: the
// RBias check, then publication at r's cached slot for this engine — the
// steady-state path is one CAS with no identity derivation and no hashing.
// Callers that failed must acquire read permission on the substrate and
// then call SlowLockedH followed by MaybeEnable.
func (e *Engine) TryFastH(r *Reader) (SlotToken, bool) {
	if e.rbias.Load() != 1 {
		e.NoteDisabled()
		return 0, false
	}
	// Snapshot the bias generation before probing: a collision recorded
	// below must carry the epoch that was current when the slot was
	// observed occupied, not one bumped by a concurrent revoke+re-enable
	// mid-call (which would extend the diversion through the next epoch).
	epoch := e.epoch.Load()
	ent := r.lookup(e)
	if ent == nil {
		if ent = r.alloc(e); ent == nil {
			// Every entry is pinned by an outstanding hold: nowhere to
			// record this acquisition, so divert (like the kernel task with
			// its per-task record full).
			e.noteHandle()
			return 0, false
		}
	}
	if ent.flags&entFastHeld != 0 {
		// One fast hold per (handle, lock): a reentrant read acquisition
		// diverts to the slow path, keeping slot bookkeeping unambiguous.
		e.noteHandle()
		return 0, false
	}
	if e.randomized {
		// Randomized indices change per acquisition by design; take the
		// hashing path and track only the hold.
		tok, ok := e.TryPublish(r.id)
		if ok {
			ent.slot = tok.Index()
			ent.gen = tok.Gen()
			ent.flags |= entFastHeld
		}
		return tok, ok
	}
	if ent.flags&entDiverted != 0 {
		if ent.epoch == epoch {
			// Collision memory: the home slot was occupied earlier this
			// bias epoch; skip the doomed CAS until bias flips. This is a
			// deliberate trade — a diverted reader stays slow until the
			// next revoke/re-enable cycle even if the occupant has left —
			// buying a branch instead of a failing CAS per acquisition;
			// at the paper's table sizing collisions are rare enough that
			// the anonymous RLock path remains the fallback of choice for
			// locks that never see writers.
			e.noteCollision()
			return 0, false
		}
		ent.flags &^= entDiverted
		ent.slot = e.table.Index(e.ID(), r.id) // retry the home slot
	}
	if tok, ok, done := e.publishAt(ent.slot); done {
		if ok {
			ent.gen = tok.Gen()
			ent.flags |= entFastHeld
		}
		return tok, ok
	}
	// Cached slot occupied: fall back to the full probe sequence, skipping
	// the slot already tried. The cached slot may be a second-probe
	// alternate from an earlier rescue, so the true home slot must be
	// retried here — otherwise a handle would divert while the anonymous
	// path still succeeds. Hashing on this path is fine; only the steady
	// state needs to avoid it.
	home := e.table.Index(e.ID(), r.id)
	if home != ent.slot {
		if tok, ok, done := e.publishAt(home); done {
			if ok {
				ent.slot = home
				ent.gen = tok.Gen()
				ent.flags |= entFastHeld
			}
			return tok, ok
		}
	}
	if e.probe2 {
		if alt := e.table.Index2(e.ID(), r.id); alt != ent.slot && alt != home {
			if tok, ok, done := e.publishAt(alt); done {
				if ok {
					// The alternate becomes the cached slot; a steady
					// diverted-then-rescued reader keeps hitting it.
					ent.slot = alt
					ent.gen = tok.Gen()
					ent.flags |= entFastHeld
				}
				return tok, ok
			}
		}
	}
	e.noteCollision()
	ent.flags |= entDiverted
	ent.epoch = epoch
	return 0, false
}

// ReleaseFast releases r's outstanding fast-path hold on e, clearing the
// table slot. It reports false when r holds no fast acquisition of e, in
// which case the caller releases its slow-path acquisition instead (the
// rwsem shape, where no token travels with the acquisition).
func (e *Engine) ReleaseFast(r *Reader) bool {
	ent := r.lookup(e)
	if ent == nil || ent.flags&entFastHeld == 0 {
		return false
	}
	ent.flags &^= entFastHeld
	e.table.ClearOwned(ent.slot, ent.gen, e.ID())
	return true
}

// ReleaseFastAt releases the fast-path hold recorded on r for token t (the
// token-carrying shape, where the lock hands the token back at unlock). The
// handle's held-slot record is the first arbiter: releasing a token that is
// not held is a double unlock or an unlock-without-lock, and panics. The
// table's generation check then guards the clear itself, so a token forged
// or replayed against a different handle's hold is also caught.
func (e *Engine) ReleaseFastAt(r *Reader, t SlotToken) {
	ent := r.lookup(e)
	if ent == nil || ent.flags&entFastHeld == 0 || ent.slot != t.Index() {
		panic("bias: unbalanced fast-path RUnlock (double unlock or unlock without lock)")
	}
	ent.flags &^= entFastHeld
	e.table.ClearOwned(t.Index(), t.Gen(), e.ID())
}

// SlowLockedH records a slow-path read acquisition on the handle so the
// matching release can be checked. Call it after the substrate read lock is
// held, before MaybeEnable.
func (e *Engine) SlowLockedH(r *Reader) {
	ent := r.lookup(e)
	if ent == nil {
		ent = r.alloc(e)
	}
	if ent == nil || ent.slowHeld == ^uint8(0) {
		// Untrackable (handle pinned full, or pathological nesting depth):
		// remember only the count so releases stay panic-free.
		r.untracked++
		return
	}
	ent.slowHeld++
}

// SlowUnlockedH checks and consumes a slow-path hold recorded with
// SlowLockedH. An unlock with no matching hold — and no untracked
// acquisitions that could account for it — is unbalanced, and panics
// before the caller touches the substrate.
func (e *Engine) SlowUnlockedH(r *Reader) {
	ent := r.lookup(e)
	if ent != nil && ent.slowHeld > 0 {
		ent.slowHeld--
		return
	}
	if r.untracked > 0 {
		r.untracked--
		return
	}
	panic("bias: unbalanced slow-path RUnlock (double unlock or unlock without lock)")
}

// CachedSlot exposes r's cached slot and divert state for e (diagnostics
// and tests).
func (r *Reader) CachedSlot(e *Engine) (slot uint32, diverted, ok bool) {
	ent := r.lookup(e)
	if ent == nil {
		return 0, false, false
	}
	return ent.slot, ent.flags&entDiverted != 0, true
}
