package lockcheck

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/locks/pfq"
	"github.com/bravolock/bravo/internal/locks/ptl"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/rwl"
)

// The checkers are themselves load-bearing: every lock package's test file
// is a handful of one-liners through them. These tests certify the checkers
// against known-good locks from both admission families, plus the BRAVO
// wrapper, so a checker regression cannot silently hollow out the whole
// correctness battery.

func mkGoRW() rwl.RWLock  { return new(stdrw.Lock) }
func mkPtl() rwl.RWLock   { return ptl.New() }
func mkBravo() rwl.RWLock { return core.New(new(pfq.Lock)) }

func TestExclusionAcceptsCorrectLocks(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() rwl.RWLock
	}{
		{"go-rw", mkGoRW},
		{"pthread", mkPtl},
		{"bravo-ba", mkBravo},
	} {
		t.Run(tc.name, func(t *testing.T) {
			Exclusion(t, tc.mk, 4, 2, 300)
		})
	}
}

func TestTryExclusionAcceptsCorrectLock(t *testing.T) {
	TryExclusion(t, mkBravo, 4, 300)
}

func TestReadersConcurrentAcceptsRWLock(t *testing.T) {
	ReadersConcurrent(t, mkGoRW())
	ReadersConcurrent(t, mkBravo())
}

func TestWriterExcludesReadersAcceptsRWLock(t *testing.T) {
	WriterExcludesReaders(t, mkGoRW())
	WriterExcludesReaders(t, mkBravo())
}

func TestWaitingWriterBlocksReadersOnPhaseFair(t *testing.T) {
	// PF-Q hands the lock writer-then-reader in phases; a reader arriving
	// behind a waiting writer must wait its turn.
	WaitingWriterBlocksReaders(t, new(pfq.Lock))
}

func TestWaitingWriterStarvedByReadersOnReaderPref(t *testing.T) {
	// The POSIX-style lock prefers readers: a late reader overtakes the
	// waiting writer.
	WaitingWriterStarvedByReaders(t, mkPtl())
}

func TestEventuallyReturnsOnceCondHolds(t *testing.T) {
	var flag atomic.Bool
	go func() {
		time.Sleep(5 * time.Millisecond)
		flag.Store(true)
	}()
	start := time.Now()
	Eventually(t, flag.Load, "flag never set")
	if time.Since(start) > 5*time.Second {
		t.Fatal("Eventually kept polling long after the condition held")
	}
}

func TestNeverToleratesFalseCond(t *testing.T) {
	calls := 0
	Never(t, func() bool { calls++; return false }, 20*time.Millisecond, "unreachable")
	if calls == 0 {
		t.Fatal("Never did not poll the condition")
	}
}

// TestExclusionDetectsViolations runs the detector's occupancy accounting
// against a deliberately broken "lock" that admits everyone, on a separate
// probe testing.T (and its own goroutine, since Fatalf ends in Goexit) so
// the expected failure does not fail this test.
func TestExclusionDetectsViolations(t *testing.T) {
	probe := &testing.T{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		Exclusion(probe, func() rwl.RWLock { return brokenLock{} }, 4, 2, 500)
	}()
	<-done
	if !probe.Failed() {
		t.Fatal("Exclusion did not flag a lock with no mutual exclusion at all")
	}
}

// brokenLock grants every acquisition immediately.
type brokenLock struct{}

func (brokenLock) RLock() rwl.Token  { return 0 }
func (brokenLock) RUnlock(rwl.Token) {}
func (brokenLock) Lock()             {}
func (brokenLock) Unlock()           {}
