package bias

import (
	"testing"

	"github.com/bravolock/bravo/internal/clock"
)

func TestInhibitPolicyMath(t *testing.T) {
	// Listing 1 line 49: InhibitUntil = now + (now - start)·N.
	p := NewInhibitPolicy(9)
	p.RevocationDone(100, 250)
	if got, want := p.InhibitedUntil(), int64(250+150*9); got != want {
		t.Fatalf("InhibitUntil = %d, want %d", got, want)
	}
}

func TestInhibitPolicyDefaultN(t *testing.T) {
	p := NewInhibitPolicy(0)
	if p.N != DefaultInhibitN {
		t.Fatalf("default N = %d, want %d", p.N, DefaultInhibitN)
	}
	if DefaultInhibitN != 9 {
		t.Fatalf("paper uses N = 9, got %d", DefaultInhibitN)
	}
}

func TestInhibitPolicyGates(t *testing.T) {
	p := NewInhibitPolicy(9)
	if !p.ShouldEnable() {
		t.Fatal("fresh policy must allow bias")
	}
	// A long revocation pushes the deadline far into the future.
	now := clock.Nanos()
	p.RevocationDone(now, now+int64(10e9)) // 10s revocation → 90s inhibit
	if p.ShouldEnable() {
		t.Fatal("bias allowed during inhibit window")
	}
	// A deadline in the past re-allows bias.
	p.ForceInhibitUntil(clock.Nanos() - 1)
	if !p.ShouldEnable() {
		t.Fatal("bias not allowed after inhibit window passed")
	}
}

func TestInhibitPolicyWorstCaseBound(t *testing.T) {
	// The slow-down bound: with revocation cost D and inhibit N·D, at most
	// one revocation can occur per (N+1)·D of wall time, so the writer
	// overhead fraction is ≤ D/((N+1)·D) = 1/(N+1) ≈ 10% for N = 9.
	p := NewInhibitPolicy(9)
	const d = 1000
	start := int64(0)
	p.RevocationDone(start, start+d)
	window := p.InhibitedUntil() - start
	frac := float64(d) / float64(window)
	if frac > 1.0/float64(9+1)+1e-9 {
		t.Fatalf("worst-case writer slow-down %.3f exceeds 1/(N+1)", frac)
	}
}

func TestBernoulliPolicyRate(t *testing.T) {
	p := &BernoulliPolicy{P: 4}
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.ShouldEnable() {
			hits++
		}
	}
	// The trial hashes the clock; rate should be near n/4 but the clock is
	// not uniform, so accept a generous band.
	if hits < n/16 || hits > n/2 {
		t.Fatalf("Bernoulli(1/4) hit %d/%d", hits, n)
	}
	p.RevocationDone(0, 1) // must be a no-op
}

func TestBernoulliPolicyDefaultP(t *testing.T) {
	p := &BernoulliPolicy{}
	for i := 0; i < 100; i++ {
		p.ShouldEnable() // must not panic with zero P
	}
}

func TestEndpointPolicies(t *testing.T) {
	if !(AlwaysPolicy{}).ShouldEnable() {
		t.Fatal("AlwaysPolicy refused")
	}
	if (NeverPolicy{}).ShouldEnable() {
		t.Fatal("NeverPolicy agreed")
	}
	(AlwaysPolicy{}).RevocationDone(0, 1)
	(NeverPolicy{}).RevocationDone(0, 1)
}
