package kvs

import (
	"sync/atomic"

	"github.com/bravolock/bravo/internal/hash"
)

// seqIndex is the optimistic read path's key→cell lookup structure: an
// open-addressed hash table whose every slot word is atomic, so a reader
// can probe it with no lock held while a writer (under the shard write
// lock) mutates it. Go's built-in map cannot play this role — the runtime
// faults on a map read concurrent with a write — so the shard keeps both:
// the map stays the authoritative store driving iteration, snapshots and
// Len, and this index shadows it with the same *seqCell pointers for
// lock-free probes.
//
// Consistency contract: the index is only guaranteed coherent when the
// shard's write-section sequence is even. A reader that probes mid-write
// can see a slot half-claimed, a key republished, or a stale table — all
// benign, because the surrounding seq validation discards the read. What
// the atomics buy is memory safety and race-detector cleanliness, not
// ordering; what the seq bracket buys is ordering.
//
// Writer-side discipline (all under the shard write lock):
//
//   - A slot, once claimed for a key, keeps state slotClaimed until the
//     table is rebuilt; deletion just nils the cell pointer (a tombstone).
//     Probe chains therefore only terminate at never-claimed slots, the
//     standard tombstone rule.
//   - The table grows (and purges tombstones) by rebuilding from the
//     authoritative map into a fresh table published with one atomic
//     pointer store; a reader mid-probe on the old table finishes its
//     probe on a stale but internally-safe view and is invalidated.
type seqIndex struct {
	tab atomic.Pointer[seqTable]
	// used counts claimed slots, tombstones included — the load factor
	// driver. Writer-only, under the shard write lock.
	used int
}

type seqTable struct {
	mask  uint64
	slots []seqSlot
}

type seqSlot struct {
	state atomic.Uint32
	key   atomic.Uint64
	cell  atomic.Pointer[seqCell]
}

const (
	slotEmpty   = 0
	slotClaimed = 1
)

// seqIndexMinSize is the smallest table allocated; must be a power of two.
const seqIndexMinSize = 16

// seqHome spreads key across the table. The shard selector consumed
// hash.Mix64's low bits, so within one shard those bits are constant; the
// index homes on the high bits to stay uniform.
func seqHome(key uint64) uint64 { return hash.Mix64(key) >> 32 }

// lookup probes for key with no lock held. It returns the published cell,
// nil for absent (or tombstoned) keys. The result is only trustworthy
// under a validated seq section.
func (ix *seqIndex) lookup(key uint64) *seqCell {
	t := ix.tab.Load()
	if t == nil {
		return nil
	}
	h := seqHome(key)
	for i := uint64(0); i <= t.mask; i++ {
		s := &t.slots[(h+i)&t.mask]
		if s.state.Load() == slotEmpty {
			return nil
		}
		if s.key.Load() == key {
			return s.cell.Load()
		}
	}
	return nil // saturated table (transient mid-rebuild view); a miss is safe
}

// put publishes key→cell, claiming a slot on first insert and reusing the
// key's claimed slot (or a tombstone) afterwards. Caller holds the shard
// write lock inside an open write section.
func (ix *seqIndex) put(data map[uint64]*seqCell, key uint64, cell *seqCell) {
	t := ix.tab.Load()
	if t == nil || (ix.used+1)*4 > len(t.slots)*3 {
		ix.rebuild(data, key, cell)
		return
	}
	h := seqHome(key)
	tomb := -1
	for i := uint64(0); i <= t.mask; i++ {
		p := int((h + i) & t.mask)
		s := &t.slots[p]
		if s.state.Load() == slotEmpty {
			if tomb >= 0 {
				p, s = tomb, &t.slots[tomb]
			} else {
				ix.used++
			}
			s.key.Store(key)
			s.cell.Store(cell)
			s.state.Store(slotClaimed)
			return
		}
		if s.key.Load() == key {
			s.cell.Store(cell)
			return
		}
		if tomb < 0 && s.cell.Load() == nil {
			tomb = p
		}
	}
	// No empty slot on the whole chain (tombstone-saturated): rebuild.
	ix.rebuild(data, key, cell)
}

// del tombstones key's slot. Caller holds the shard write lock inside an
// open write section.
func (ix *seqIndex) del(key uint64) {
	t := ix.tab.Load()
	if t == nil {
		return
	}
	h := seqHome(key)
	for i := uint64(0); i <= t.mask; i++ {
		s := &t.slots[(h+i)&t.mask]
		if s.state.Load() == slotEmpty {
			return
		}
		if s.key.Load() == key {
			s.cell.Store(nil)
			return
		}
	}
}

// rebuild publishes a fresh table sized for the authoritative map plus the
// entry being inserted, copying the live cells over (and dropping
// tombstones). extraKey's mapping is taken from extraCell, covering the
// caller that rebuilds mid-put before the map insert lands.
func (ix *seqIndex) rebuild(data map[uint64]*seqCell, extraKey uint64, extraCell *seqCell) {
	need := len(data)
	if extraCell != nil {
		need++
	}
	size := seqIndexMinSize
	for size*3 < need*4 { // keep the rebuilt table under 3/4 full
		size *= 2
	}
	t := &seqTable{mask: uint64(size - 1), slots: make([]seqSlot, size)}
	ins := func(k uint64, c *seqCell) {
		h := seqHome(k)
		for i := uint64(0); ; i++ {
			s := &t.slots[(h+i)&t.mask]
			if s.state.Load() == slotEmpty {
				s.key.Store(k)
				s.cell.Store(c)
				s.state.Store(slotClaimed)
				return
			}
			if s.key.Load() == k {
				s.cell.Store(c)
				return
			}
		}
	}
	used := 0
	for k, c := range data {
		if extraCell != nil && k == extraKey {
			continue
		}
		ins(k, c)
		used++
	}
	if extraCell != nil {
		ins(extraKey, extraCell)
		used++
	}
	ix.used = used
	ix.tab.Store(t)
}

// reset drops the table; the next put rebuilds from the (replaced) map.
// Caller holds the shard write lock inside an open write section.
func (ix *seqIndex) reset() {
	ix.tab.Store(nil)
	ix.used = 0
}
