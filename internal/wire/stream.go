package wire

import (
	"errors"
	"fmt"
	"io"

	"github.com/bravolock/bravo/internal/frame"
)

// ErrCorruptFrame reports stream bytes that can never become a valid
// frame: an insane or over-cap declared length, or a CRC mismatch over a
// fully-present payload. A connection that produces it is unrecoverable —
// frame boundaries are lost — and closes.
var ErrCorruptFrame = errors.New("wire: corrupt frame")

// StreamDecoder incrementally splits frames off an io.Reader: the wire's
// analogue of WAL replay's torn-tail walk, with the same codec underneath
// (internal/frame) and the stream consumer's posture — Incomplete reads
// more, Corrupt fails the stream.
type StreamDecoder struct {
	r   io.Reader
	max int
	buf []byte
	off int // consumed prefix of buf
	tmp []byte
}

// NewStreamDecoder returns a decoder over r. maxFrame bounds an accepted
// frame's total length (<= 0 means DefaultMaxFrame); a peer declaring more
// is treated as corrupt before any of it is buffered.
func NewStreamDecoder(r io.Reader, maxFrame int) *StreamDecoder {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &StreamDecoder{r: r, max: maxFrame, tmp: make([]byte, 32<<10)}
}

// Next returns the next frame's payload, reading from the underlying
// stream only when no complete frame is already buffered. The payload
// aliases the decoder's buffer and is valid until the following Next call.
// Errors are ErrCorruptFrame (connection unrecoverable) or the underlying
// reader's error (io.EOF between frames for a clean end-of-stream,
// io.ErrUnexpectedEOF inside one).
//
// The buffered-first order is what lets a draining server answer every
// fully-received pipelined request after its listener closes: Next keeps
// yielding buffered frames until it genuinely needs bytes the peer never
// sent, and only then surfaces the read error.
func (d *StreamDecoder) Next() ([]byte, error) {
	for {
		payload, n, status := frame.Split(d.buf[d.off:])
		if status == frame.Corrupt {
			return nil, ErrCorruptFrame
		}
		if want := frame.PeekLen(d.buf[d.off:]); want > d.max {
			return nil, fmt.Errorf("%w: declared frame length %d over the %d cap", ErrCorruptFrame, want, d.max)
		}
		if status == frame.OK {
			d.off += n
			return payload, nil
		}
		// Compact the consumed prefix before growing the buffer.
		if d.off > 0 {
			d.buf = append(d.buf[:0], d.buf[d.off:]...)
			d.off = 0
		}
		n, err := d.r.Read(d.tmp)
		if n > 0 {
			d.buf = append(d.buf, d.tmp[:n]...)
			continue // a read may complete the frame even if err != nil
		}
		if err == nil {
			continue
		}
		if err == io.EOF && len(d.buf) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
}

// HasFrame reports whether a complete frame is already buffered — the next
// Next will not touch the underlying reader. Servers use it to batch
// pipelined responses: flush only when the request backlog is empty.
func (d *StreamDecoder) HasFrame() bool {
	_, _, status := frame.Split(d.buf[d.off:])
	return status == frame.OK
}
