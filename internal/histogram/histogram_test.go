package histogram

import (
	"testing"
	"testing/quick"
)

func TestRecordAndCount(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
	if m := h.Mean(); m < 500 || m > 501 {
		t.Fatalf("mean = %v, want 500.5", m)
	}
}

func TestPercentileOrdering(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 10000; i++ {
		h.Record(i)
	}
	p50 := h.Percentile(50)
	p90 := h.Percentile(90)
	p99 := h.Percentile(99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("percentiles not monotonic: %d %d %d", p50, p90, p99)
	}
	// p50 of uniform [0,10000) is ~5000; bucket upper bound gives ≤8192.
	if p50 < 4096 || p50 > 8192 {
		t.Fatalf("p50 bound %d implausible", p50)
	}
}

func TestPercentileBracketsSamples(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		max := int64(0)
		for _, v := range raw {
			h.Record(int64(v))
			if int64(v) > max {
				max = int64(v)
			}
		}
		// p100 upper bound must bracket the maximum.
		return h.Percentile(100) >= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := int64(0); i < 100; i++ {
		a.Record(10)
		b.Record(1000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 1000 {
		t.Fatalf("merged max = %d", a.Max())
	}
	if a.Percentile(25) > 16 || a.Percentile(99) < 512 {
		t.Fatalf("merged distribution wrong: p25≤%d p99≤%d", a.Percentile(25), a.Percentile(99))
	}
}

func TestNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatal("negative sample not clamped")
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Percentile(99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	if h.String() == "" {
		t.Fatal("empty String")
	}
}
