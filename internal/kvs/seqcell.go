package kvs

import (
	"encoding/binary"
	"sync/atomic"
)

// seqCell is one key's value storage in a form the optimistic (seqlock) read
// path can copy out with no lock held: the bytes are packed little-endian
// into a fixed array of atomic words, with the visible length and the TTL
// deadline alongside as atomics. Every field access is atomic, so a reader
// racing an in-place writer observes some interleaving of old and new words
// — torn data — but never a data race; the shard's write-section sequence
// counter is what detects the tear and discards the copy.
//
// The word array's size is fixed at allocation: an update that fits is
// applied in place (the engine's rocksdb-style in-place update, at word
// granularity), one that does not allocates a replacement cell which the
// writer republishes in the shard map and seq index. Readers therefore
// always have len(words) as a stable bound — a torn length can misreport
// the payload, never send a copy out of bounds.
type seqCell struct {
	vlen     atomic.Int64 // visible byte length, <= 8*len(words)
	deadline atomic.Int64 // TTL deadline (clock.Nanos), 0 = no TTL
	words    []atomic.Uint64
}

// newSeqCell allocates a cell sized for value and stores it.
func newSeqCell(value []byte, deadline int64) *seqCell {
	c := &seqCell{words: make([]atomic.Uint64, (len(value)+7)/8)}
	c.set(value, deadline)
	return c
}

// fits reports whether a value of n bytes can be stored in place.
func (c *seqCell) fits(n int) bool { return n <= len(c.words)*8 }

// set stores value and deadline in place. The caller holds the shard write
// lock inside an open write section; concurrent optimistic readers may see
// the store half-applied and are invalidated by the section's seq bump.
func (c *seqCell) set(value []byte, deadline int64) {
	for i := 0; i*8 < len(value); i++ {
		var w [8]byte
		copy(w[:], value[i*8:])
		c.words[i].Store(binary.LittleEndian.Uint64(w[:]))
	}
	c.vlen.Store(int64(len(value)))
	c.deadline.Store(deadline)
}

// length returns the visible byte length, clamped to the cell's capacity so
// a torn read can never index out of bounds.
func (c *seqCell) length() int {
	n := int(c.vlen.Load())
	if max := len(c.words) * 8; n < 0 || n > max {
		return max
	}
	return n
}

// appendTo appends the cell's bytes to buf and returns the result. Safe to
// call with no lock held; the copy may be torn and the caller must validate
// the surrounding seq section before trusting it.
func (c *seqCell) appendTo(buf []byte) []byte {
	n := c.length()
	var w [8]byte
	for i := 0; i < n/8; i++ {
		binary.LittleEndian.PutUint64(w[:], c.words[i].Load())
		buf = append(buf, w[:]...)
	}
	if rem := n % 8; rem > 0 {
		binary.LittleEndian.PutUint64(w[:], c.words[n/8].Load())
		buf = append(buf, w[:rem]...)
	}
	return buf
}

// bytes returns a fresh copy of the cell's value. Non-nil even for empty
// values, so callers can use nil as an absence marker.
func (c *seqCell) bytes() []byte {
	return c.appendTo(make([]byte, 0, c.length()))
}
