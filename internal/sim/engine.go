package sim

import (
	"container/heap"

	"github.com/bravolock/bravo/internal/xrand"
)

// Thread is one simulated benchmark thread pinned to a CPU.
type Thread struct {
	ID  int
	CPU int
	Rng *xrand.XorShift64
	Mt  *xrand.MT19937 // RWBench's per-thread std::mt19937
	Clk float64
	Ops uint64
	tok uint64 // lock-model cookie carried from acquire to release
	// body advances the thread by one scheduling step and reports whether a
	// full benchmark iteration completed (acquire and release are separate
	// steps so that concurrent threads interleave on lock state).
	body func(*Thread) bool
}

// threadHeap orders threads by virtual clock.
type threadHeap []*Thread

func (h threadHeap) Len() int           { return len(h) }
func (h threadHeap) Less(i, j int) bool { return h[i].Clk < h[j].Clk }
func (h threadHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *threadHeap) Push(x any)        { *h = append(*h, x.(*Thread)) }
func (h *threadHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// NewThreads builds n threads pinned to CPUs 0..n-1 with seeded per-thread
// generators and the given step body.
func NewThreads(n int, seed uint64, body func(*Thread) bool) []*Thread {
	ths := make([]*Thread, n)
	for i := range ths {
		ths[i] = &Thread{
			ID:   i,
			CPU:  i,
			Rng:  xrand.NewXorShift64(seed + uint64(i)*0x9e3779b97f4a7c15 + 1),
			Mt:   xrand.NewMT19937(uint32(seed) + uint32(i)),
			body: body,
		}
	}
	return ths
}

// Run executes the threads' iteration bodies in virtual-time order until
// every thread's clock passes horizonNs, and returns the number of
// iterations that completed within the horizon.
func Run(threads []*Thread, horizonNs float64) uint64 {
	h := make(threadHeap, 0, len(threads))
	for _, th := range threads {
		heap.Push(&h, th)
	}
	for h.Len() > 0 {
		th := heap.Pop(&h).(*Thread)
		if th.Clk >= horizonNs {
			continue
		}
		if th.body(th) {
			th.Ops++
		}
		heap.Push(&h, th)
	}
	var total uint64
	for _, th := range threads {
		total += th.Ops
	}
	return total
}
