// Package kvserv is the HTTP front-end over the sharded KV engine: the
// serving layer that turns the repository's lock work into a system that
// answers traffic. Every read a connection performs goes through one pinned
// rwl.Reader handle attached to that connection, so a client's steady-state
// read path — socket to shard map — costs one cached-slot CAS on the shard
// lock, with no per-request identity derivation or hashing.
//
// Endpoints (keys are decimal uint64, values are raw bytes; batched bodies
// are JSON with values base64-encoded, encoding/json's []byte convention):
//
//	GET    /kv/{key}            value bytes, 404 on miss or TTL expiry
//	PUT    /kv/{key}[?ttl=1s]   store body; ttl attaches an expiry;
//	       [?async=1]           async enqueues on the shard write queue
//	DELETE /kv/{key}            204 when removed, 404 when absent
//	GET    /mget?keys=1,2,3     {"values": [b64|null, ...]} parallel to keys
//	POST   /mput                {"entries":[{"key":1,"value":b64},...],
//	                             "ttl":"1s"?} applied as one MultiPut
//	POST   /flush               apply queued async writes: {"flushed":n}
//	POST   /checkpoint          durable engines: snapshot every shard and
//	                            truncate its WAL; 409 on volatile engines
//	GET    /stats               engine ShardedStats + totals + durability
//	                            (+ replication posture when replicating)
//
// Replication: a durable server is automatically a replication primary —
// it mounts internal/repl's GET /repl/stream and /repl/status, and every
// write answers with X-Commit-Lsn and X-Commit-Shard headers (batched
// /mput returns a per-shard "lsns" map): the read-your-writes token.
// NewFollower serves a repl.Follower's replica read-only: the read
// endpoints work (plus ?min_lsn=, which waits for the token's LSN or
// answers 409), writes answer 403, and /stats carries per-shard
// applied_lsn and lag against the primary.
//
// The per-connection handle relies on HTTP/1.x serving a connection's
// requests sequentially; the server does not enable h2, where concurrent
// streams would share the connection's handle.
package kvserv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/bravolock/bravo/internal/cluster"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/repl"
	"github.com/bravolock/bravo/internal/rwl"
)

// MaxValueBytes caps a single PUT body (and each MPUT value): the engine
// copies values under shard locks, so unbounded bodies would turn one
// request into a stop-the-world for its shard.
const MaxValueBytes = 1 << 20

// MaxMPutBodyBytes caps the whole /mput JSON body — the aggregate batch
// ceiling, on top of the per-entry MaxValueBytes check (base64 plus JSON
// framing inflate values by ~4/3, so this admits batches of several
// maximum-size entries or thousands of small ones). Oversize batches get
// 413; split them.
const MaxMPutBodyBytes = 16 << 20

// DefaultReapInterval and DefaultReapBudget pace the background TTL reaper:
// an incremental sweep every interval, examining at most budget tracked
// entries per tick under the ordinary shard write locks.
const (
	DefaultReapInterval = 100 * time.Millisecond
	DefaultReapBudget   = kvs.DefaultReapBudget
)

// DefaultMinLSNWait bounds how long a read with ?min_lsn= blocks for the
// replica to catch up before answering 409.
const DefaultMinLSNWait = 2 * time.Second

// DefaultDrainTimeout bounds how long a closing server keeps reading a
// wire connection's already-sent pipelined requests before cutting it off.
// In-flight bytes are in the kernel buffer and readable immediately, so
// this only needs to cover one scheduling round trip, not client think
// time.
const DefaultDrainTimeout = 250 * time.Millisecond

// Config tunes a Server.
type Config struct {
	// ReapInterval paces the background TTL reaper; 0 means
	// DefaultReapInterval, negative disables background reaping (TTL
	// expiry stays lazy on reads).
	ReapInterval time.Duration
	// ReapBudget bounds entries examined per reap tick; 0 means
	// DefaultReapBudget.
	ReapBudget int
	// MinLSNWait bounds a ?min_lsn= read's wait on a follower; 0 means
	// DefaultMinLSNWait.
	MinLSNWait time.Duration
	// DrainTimeout bounds a closing wire connection's read of already-sent
	// pipelined requests; 0 means DefaultDrainTimeout.
	DrainTimeout time.Duration
}

// Server serves a kvs.Sharded engine over HTTP.
type Server struct {
	engine *kvs.Sharded
	cfg    Config
	http   *http.Server
	done   chan struct{}
	wg     sync.WaitGroup

	// primary is the replication server side, mounted when the engine is
	// durable (its WAL is the stream); nil otherwise.
	primary *repl.Primary
	// follower is set by NewFollower: the server serves its replica
	// read-only and rejects writes.
	follower *repl.Follower
	// clu is set by NewClusterServer: the server fronts a whole cluster
	// (engine is nil; every op routes through the cluster's partitions).
	clu *cluster.Cluster

	// Wire front-end state: the listeners ServeWire is accepting on and
	// the connections currently being served, so Close can stop the former
	// and drain the latter.
	wireMu    sync.Mutex
	wireLns   map[net.Listener]bool
	wireConns map[net.Conn]bool

	closeOnce sync.Once
}

// New returns a server over engine. Serve starts it; Close stops it.
// A durable engine's server doubles as a replication primary.
func New(engine *kvs.Sharded, cfg Config) *Server {
	s := newServer(engine, cfg)
	if engine.Durable() {
		s.primary = repl.NewPrimary(engine)
	}
	s.buildHTTP()
	return s
}

// NewFollower returns a read-only server over f's replica: the read
// endpoints (with ?min_lsn= honored against f's applied LSNs), /stats
// with replication lag, and 403 on every mutating endpoint.
func NewFollower(f *repl.Follower, cfg Config) *Server {
	s := newServer(f.Engine(), cfg)
	s.follower = f
	s.buildHTTP()
	return s
}

// NewClusterServer returns a server fronting c: the same endpoints and
// wire ops as a single-primary server, routed per key across the
// cluster's partitions, with read-your-writes tokens widened to (epoch,
// shard, lsn) triples and POST /failover/{partition} for operator-driven
// promotion. Closing the server does not close the cluster — the caller
// owns that lifecycle, like the engine's.
func NewClusterServer(c *cluster.Cluster, cfg Config) *Server {
	s := newServer(nil, cfg)
	s.clu = c
	s.buildHTTP()
	return s
}

// newServer holds the mode-independent setup; the route table is built by
// buildHTTP once the constructor has settled the mode fields.
func newServer(engine *kvs.Sharded, cfg Config) *Server {
	if cfg.ReapInterval == 0 {
		cfg.ReapInterval = DefaultReapInterval
	}
	if cfg.ReapBudget <= 0 {
		cfg.ReapBudget = DefaultReapBudget
	}
	if cfg.MinLSNWait <= 0 {
		cfg.MinLSNWait = DefaultMinLSNWait
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	return &Server{
		engine:    engine,
		cfg:       cfg,
		done:      make(chan struct{}),
		wireLns:   make(map[net.Listener]bool),
		wireConns: make(map[net.Conn]bool),
	}
}

func (s *Server) buildHTTP() {
	s.http = &http.Server{
		Handler: s.Handler(),
		// Slow-client bounds: a connection that trickles header bytes or
		// sits idle is reclaimed, rather than pinning a goroutine (and its
		// reader handle) forever.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		// One pinned reader handle per connection: HTTP/1.x serves a
		// connection's requests sequentially on one goroutine, so the
		// handle's single-goroutine contract holds.
		ConnContext: func(ctx context.Context, _ net.Conn) context.Context {
			return context.WithValue(ctx, readerKey{}, rwl.NewReader())
		},
	}
}

// readerKey carries the per-connection reader handle in the request context.
type readerKey struct{}

// connReader returns the request's connection-pinned reader handle, nil
// when the request did not come through Serve's ConnContext (e.g. direct
// Handler tests); the engine's read paths degrade gracefully on nil.
func connReader(r *http.Request) *rwl.Reader {
	h, _ := r.Context().Value(readerKey{}).(*rwl.Reader)
	return h
}

// Handler returns the route table. It is usable standalone (httptest), but
// only connections served via Serve get per-connection reader handles.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	if s.clu != nil {
		s.registerClusterRoutes(mux)
		return mux
	}
	mux.HandleFunc("GET /kv/{key}", s.handleGet)
	mux.HandleFunc("GET /mget", s.handleMGet)
	mux.HandleFunc("GET /stats", s.handleStats)
	if s.follower != nil {
		// Read-only replica: every mutating endpoint answers 403, naming
		// the primary so a misrouted client can fix itself.
		for _, route := range []string{
			"PUT /kv/{key}", "DELETE /kv/{key}", "POST /mput",
			"POST /cas", "POST /txn", "POST /flush", "POST /checkpoint",
		} {
			mux.HandleFunc(route, s.handleReadOnly)
		}
		mux.HandleFunc("GET /repl/status", s.handleFollowerStatus)
		return mux
	}
	mux.HandleFunc("PUT /kv/{key}", s.handlePut)
	mux.HandleFunc("DELETE /kv/{key}", s.handleDelete)
	mux.HandleFunc("POST /mput", s.handleMPut)
	mux.HandleFunc("POST /cas", s.handleCas)
	mux.HandleFunc("POST /txn", s.handleTxn)
	mux.HandleFunc("POST /flush", s.handleFlush)
	mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	if s.primary != nil {
		s.primary.Register(mux)
	}
	return mux
}

// handleReadOnly rejects writes on a follower.
func (s *Server) handleReadOnly(w http.ResponseWriter, r *http.Request) {
	http.Error(w, fmt.Sprintf("read-only follower: write to the primary at %s", s.follower.Primary()), http.StatusForbidden)
}

// Serve accepts connections on l until Close. It also runs the background
// TTL reaper (unless disabled) so expired keys are removed incrementally
// while the server is up. Like http.Server.Serve, it always returns a
// non-nil error; after Close that error is http.ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	if s.cfg.ReapInterval > 0 {
		s.wg.Add(1)
		go s.reapLoop()
	}
	return s.http.Serve(l)
}

// Close stops the server: HTTP listeners and connections close
// immediately; wire listeners close and each wire connection gets
// DrainTimeout to finish answering the pipelined requests its client
// already sent (the read deadline cuts the stream, buffered frames are
// still served — see ServeWire). Then the reaper stops and the engine's
// queued async writes flush so nothing accepted with a 202 is left
// invisible (or, on durable engines, unlogged). It does not Close the
// engine itself — the caller owns that lifecycle (see cmd/kvserv's
// shutdown path).
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.http.Close()
		s.wireMu.Lock()
		for l := range s.wireLns {
			l.Close()
		}
		deadline := time.Now().Add(s.cfg.DrainTimeout)
		for c := range s.wireConns {
			c.SetReadDeadline(deadline)
		}
		s.wireMu.Unlock()
		s.wg.Wait()
		if s.clu != nil {
			s.clu.Flush()
		} else {
			s.engine.Flush()
		}
	})
	return err
}

// reapLoop is the incremental background TTL reaper: one bounded Reap per
// tick, under the engine's ordinary shard write locks.
func (s *Server) reapLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			if s.clu != nil {
				s.clu.Reap(s.cfg.ReapBudget)
			} else {
				s.engine.Reap(s.cfg.ReapBudget)
			}
		}
	}
}

func parseKey(r *http.Request) (uint64, error) {
	k, err := strconv.ParseUint(r.PathValue("key"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad key %q: want decimal uint64", r.PathValue("key"))
	}
	return k, nil
}

// minLSNError is a read-your-writes token the serving side cannot honor:
// Conflict reports 409-vs-400 (retryable lag vs a token that can never be
// valid here).
type minLSNError struct {
	Msg      string
	Conflict bool
}

func (e *minLSNError) Error() string { return e.Msg }

// checkMinLSN enforces a read's min_lsn read-your-writes token: every
// shard the read touches must have applied at least that LSN. Followers
// wait up to MinLSNWait for replication to cover the token; a durable
// primary's position always covers the tokens it handed out, so a lagging
// token there means a client confused about who it wrote to. The
// transport-independent core of the HTTP ?min_lsn= and the wire MinLSN
// field — nil means the read may proceed.
func (s *Server) checkMinLSN(lsn uint64, keys []uint64) *minLSNError {
	if lsn == 0 {
		return nil
	}
	if s.follower == nil && !s.engine.Durable() {
		return &minLSNError{Msg: "min_lsn on a volatile server: it has no LSNs"}
	}
	shards := map[int]bool{}
	for _, k := range keys {
		shards[s.engine.ShardOf(k)] = true
	}
	deadline := time.Now().Add(s.cfg.MinLSNWait)
	for sh := range shards {
		if s.follower != nil {
			if s.follower.WaitMinLSN(sh, lsn, time.Until(deadline)) {
				continue
			}
			return &minLSNError{
				Msg:      fmt.Sprintf("replica shard %d at LSN %d, need %d: retry, or read the primary", sh, s.follower.AppliedLSN(sh), lsn),
				Conflict: true,
			}
		}
		if s.engine.ShardLSN(sh) < lsn {
			return &minLSNError{
				Msg:      fmt.Sprintf("shard %d at LSN %d, token says %d: this primary never issued it", sh, s.engine.ShardLSN(sh), lsn),
				Conflict: true,
			}
		}
	}
	return nil
}

// honorMinLSN is checkMinLSN's HTTP face: parse ?min_lsn=, write the error
// response on failure, report whether the read may proceed.
func (s *Server) honorMinLSN(w http.ResponseWriter, r *http.Request, keys ...uint64) bool {
	// Query() builds a map per call; the hot read path carries no token at
	// all, and a plain substring probe keeps it allocation-free.
	if !strings.Contains(r.URL.RawQuery, "min_lsn") {
		return true
	}
	raw := r.URL.Query().Get("min_lsn")
	if raw == "" {
		return true
	}
	lsn, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad min_lsn %q: want a decimal LSN", raw), http.StatusBadRequest)
		return false
	}
	if merr := s.checkMinLSN(lsn, keys); merr != nil {
		code := http.StatusBadRequest
		if merr.Conflict {
			code = http.StatusConflict
		}
		http.Error(w, merr.Msg, code)
		return false
	}
	return true
}

// writeCommitHeaders stamps a write response with the shard's commit LSN:
// the read-your-writes token a client hands to a follower as ?min_lsn=.
// The LSN is read after the write applied, so it is at least the write's
// own record (concurrent writers can only push it later — still a
// covering token). Volatile engines stamp nothing.
func (s *Server) writeCommitHeaders(w http.ResponseWriter, key uint64) {
	if !s.engine.Durable() {
		return
	}
	sh := s.engine.ShardOf(key)
	w.Header().Set("X-Commit-Shard", strconv.Itoa(sh))
	w.Header().Set("X-Commit-Lsn", strconv.FormatUint(s.engine.ShardLSN(sh), 10))
}

// getBufPool recycles GET value buffers across requests (and goroutines —
// HTTP handlers run one per connection). The engine appends into the
// buffer and the handler writes it out before putting it back, so
// steady-state point reads skip the per-request value-copy allocation.
// Pointer-typed so Put does not box a fresh slice header each time.
var getBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !s.honorMinLSN(w, r, key) {
		return
	}
	bp := getBufPool.Get().(*[]byte)
	v, ok := s.engine.GetIntoH(connReader(r), key, (*bp)[:0])
	*bp = v[:0] // keep the possibly-grown buffer
	if !ok {
		getBufPool.Put(bp)
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(v)
	getBufPool.Put(bp)
}

// readPutBody reads a PUT value under the per-value cap, answering the
// error response itself; ok reports whether the handler may proceed.
func readPutBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxValueBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", MaxValueBytes), http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, fmt.Sprintf("body: %v", err), http.StatusBadRequest)
		}
		return nil, false
	}
	return body, true
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, ok := readPutBody(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	if av := q.Get("async"); av != "" {
		async, err := strconv.ParseBool(av)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad async %q: want a boolean", av), http.StatusBadRequest)
			return
		}
		if async {
			if q.Get("ttl") != "" {
				http.Error(w, "ttl and async are exclusive: the queue applies without TTL", http.StatusBadRequest)
				return
			}
			s.engine.PutAsync(key, body)
			w.WriteHeader(http.StatusAccepted)
			return
		}
	}
	if ttlStr := q.Get("ttl"); ttlStr != "" {
		ttl, err := parseTTL(ttlStr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.engine.PutTTL(key, body, ttl)
	} else {
		s.engine.Put(key, body)
	}
	s.writeCommitHeaders(w, key)
	w.WriteHeader(http.StatusNoContent)
}

// parseTTL parses and validates a TTL parameter. Only strictly positive
// durations make sense as expiries: zero and negatives would store a key
// already expired (or, in an earlier bug, a non-expiring one), and
// durations beyond ParseDuration's int64 range already fail the parse.
// Rejecting them here turns a silent data-shape surprise into a 400.
func parseTTL(raw string) (time.Duration, error) {
	ttl, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad ttl %q: %v", raw, err)
	}
	if ttl <= 0 {
		return 0, fmt.Errorf("bad ttl %q: must be positive", raw)
	}
	return ttl, nil
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	key, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ok := s.engine.Delete(key)
	// Even a miss appended a record (the delete is logged regardless), so
	// the token is stamped on both outcomes.
	s.writeCommitHeaders(w, key)
	if !ok {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// mgetResponse answers /mget: values is parallel to the requested keys,
// null marking absent (or expired) keys; []byte values render as base64.
type mgetResponse struct {
	Values [][]byte `json:"values"`
}

// parseMGetKeys parses ?keys=1,2,3, answering the error response itself.
func parseMGetKeys(w http.ResponseWriter, r *http.Request) ([]uint64, bool) {
	raw := r.URL.Query().Get("keys")
	if raw == "" {
		http.Error(w, "missing keys=1,2,3", http.StatusBadRequest)
		return nil, false
	}
	parts := strings.Split(raw, ",")
	keys := make([]uint64, len(parts))
	for i, p := range parts {
		k, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad key %q: want decimal uint64", p), http.StatusBadRequest)
			return nil, false
		}
		keys[i] = k
	}
	return keys, true
}

func (s *Server) handleMGet(w http.ResponseWriter, r *http.Request) {
	keys, ok := parseMGetKeys(w, r)
	if !ok {
		return
	}
	if !s.honorMinLSN(w, r, keys...) {
		return
	}
	writeJSON(w, mgetResponse{Values: s.engine.MultiGetH(connReader(r), keys)})
}

// mputRequest is /mput's body: a batch applied as one MultiPut (each
// shard's group under a single write-lock acquisition), optionally with
// one TTL covering the batch.
type mputRequest struct {
	Entries []mputEntry `json:"entries"`
	TTL     string      `json:"ttl,omitempty"`
}

type mputEntry struct {
	Key   uint64 `json:"key"`
	Value []byte `json:"value"`
}

// readMPutBody decodes /mput's JSON body under the batch cap, validating
// per-entry sizes and the optional batch TTL; it answers the error
// response itself.
func readMPutBody(w http.ResponseWriter, r *http.Request) (keys []uint64, vals [][]byte, ttl time.Duration, ok bool) {
	var req mputRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxMPutBodyBytes))
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("batch body exceeds %d bytes: split the batch", MaxMPutBodyBytes), http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, fmt.Sprintf("body: %v", err), http.StatusBadRequest)
		}
		return nil, nil, 0, false
	}
	if req.TTL != "" {
		var err error
		if ttl, err = parseTTL(req.TTL); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return nil, nil, 0, false
		}
	}
	keys = make([]uint64, len(req.Entries))
	vals = make([][]byte, len(req.Entries))
	for i, e := range req.Entries {
		if len(e.Value) > MaxValueBytes {
			http.Error(w, fmt.Sprintf("entry %d: value exceeds %d bytes", i, MaxValueBytes), http.StatusRequestEntityTooLarge)
			return nil, nil, 0, false
		}
		keys[i] = e.Key
		vals[i] = e.Value
	}
	return keys, vals, ttl, true
}

func (s *Server) handleMPut(w http.ResponseWriter, r *http.Request) {
	keys, vals, ttl, ok := readMPutBody(w, r)
	if !ok {
		return
	}
	if ttl > 0 {
		s.engine.MultiPutTTL(keys, vals, ttl)
	} else {
		s.engine.MultiPut(keys, vals)
	}
	resp := mputResponse{Applied: len(keys)}
	if s.engine.Durable() {
		// One commit LSN per shard the batch touched: the batch's
		// read-your-writes tokens.
		resp.LSNs = map[string]uint64{}
		for _, k := range keys {
			sh := s.engine.ShardOf(k)
			shs := strconv.Itoa(sh)
			if _, done := resp.LSNs[shs]; !done {
				resp.LSNs[shs] = s.engine.ShardLSN(sh)
			}
		}
	}
	writeJSON(w, resp)
}

// mputResponse is /mput's reply: the applied count and, on durable
// engines, the commit LSN of every shard the batch touched (keys are
// decimal shard indices).
type mputResponse struct {
	Applied int               `json:"applied"`
	LSNs    map[string]uint64 `json:"lsns,omitempty"`
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]int{"flushed": s.engine.Flush()})
}

// handleCheckpoint snapshots every shard and truncates its log. Volatile
// engines answer 409 (the operator asked for durability the server was not
// started with); real checkpoint IO failures are the one honest 500 here.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.engine.Durable() {
		http.Error(w, "engine is volatile: start kvserv with -data-dir", http.StatusConflict)
		return
	}
	if err := s.engine.Checkpoint(); err != nil {
		http.Error(w, fmt.Sprintf("checkpoint: %v", err), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]int{"checkpointed": s.engine.NumShards()})
}

// statsResponse is /stats: the engine's per-shard counters plus the fold
// and the durability posture. WALError carries the first WAL failure so a
// monitor can tell "serving but no longer durable" from healthy. Primaries
// include their replication posture under "repl", followers their
// per-shard positions and lag under "follower".
type statsResponse struct {
	NumShards     int  `json:"num_shards"`
	HandleCapable bool `json:"handle_capable"`
	// SeqReadAttempts is the engine's optimistic read budget: how many
	// lock-free seqlock read attempts a Get makes before falling back to
	// the shard's BRAVO read lock (0 = optimistic path disabled). The
	// per-path outcome counters are seq_reads/seq_retries/seq_fallbacks
	// in the shard stats below.
	SeqReadAttempts int              `json:"seq_read_attempts"`
	Durable         bool             `json:"durable"`
	SyncPolicy      string           `json:"sync_policy,omitempty"`
	WALError        string           `json:"wal_error,omitempty"`
	Total           kvs.ShardStats   `json:"total"`
	Shards          []kvs.ShardStats `json:"shards"`
	Repl            *repl.Status     `json:"repl,omitempty"`
	Follower        *followerStatus  `json:"follower,omitempty"`
	Cluster         *cluster.Status  `json:"cluster,omitempty"`
}

// followerStatus is a follower's replication view: where each shard is,
// and — when the primary answers — how far behind.
type followerStatus struct {
	Primary      string               `json:"primary"`
	Reconnects   uint64               `json:"reconnects"`
	PrimaryError string               `json:"primary_error,omitempty"`
	Shards       []followerShardStats `json:"shards"`
}

type followerShardStats struct {
	AppliedLSN uint64 `json:"applied_lsn"`
	Records    uint64 `json:"records"`
	Snapshots  uint64 `json:"snapshots"`
	// PrimaryLSN and Lag (primary minus applied, in records) are present
	// when the primary's status was reachable.
	PrimaryLSN uint64 `json:"primary_lsn,omitempty"`
	Lag        uint64 `json:"lag,omitempty"`
}

// buildFollowerStatus folds the follower's local progress with the
// primary's live LSNs into the lag view. A dead primary degrades to
// positions-only plus the fetch error.
func (s *Server) buildFollowerStatus() *followerStatus {
	fst := s.follower.Stats()
	out := &followerStatus{
		Primary:    fst.Primary,
		Reconnects: fst.Reconnects,
		Shards:     make([]followerShardStats, len(fst.Shards)),
	}
	for i, sp := range fst.Shards {
		out.Shards[i] = followerShardStats{
			AppliedLSN: sp.AppliedLSN,
			Records:    sp.Records,
			Snapshots:  sp.Snapshots,
		}
	}
	pst, err := s.follower.PrimaryStatus()
	if err != nil {
		out.PrimaryError = err.Error()
		return out
	}
	for i := range out.Shards {
		if i >= len(pst.LSNs) {
			break
		}
		out.Shards[i].PrimaryLSN = pst.LSNs[i]
		if pst.LSNs[i] > out.Shards[i].AppliedLSN {
			out.Shards[i].Lag = pst.LSNs[i] - out.Shards[i].AppliedLSN
		}
	}
	return out
}

// handleFollowerStatus is the follower's /repl/status: its own positions
// and lag (the primary's /repl/status, same path, reports the other end).
func (s *Server) handleFollowerStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.buildFollowerStatus())
}

// buildStats assembles the stats document both front-ends serve (HTTP
// GET /stats, wire STATS).
func (s *Server) buildStats() statsResponse {
	if s.clu != nil {
		cst := s.clu.Stats()
		resp := statsResponse{
			NumShards: cst.Partitions * cst.ShardsPerPartition,
			Durable:   true, // cluster primaries are always durable
			Cluster:   &cst,
		}
		for _, ps := range cst.Members {
			resp.Total.Add(ps.Total)
		}
		return resp
	}
	st := s.engine.Stats()
	resp := statsResponse{
		NumShards:       s.engine.NumShards(),
		HandleCapable:   s.engine.HandleCapable(),
		SeqReadAttempts: s.engine.SeqReadAttempts(),
		Durable:         s.engine.Durable(),
		Total:           st.Total(),
		Shards:          st.Shards,
	}
	if resp.Durable {
		resp.SyncPolicy = s.engine.SyncPolicy().String()
		if err := s.engine.WALError(); err != nil {
			resp.WALError = err.Error()
		}
	}
	if s.primary != nil {
		pst := s.primary.Status()
		resp.Repl = &pst
	}
	if s.follower != nil {
		resp.Follower = s.buildFollowerStatus()
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.buildStats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// Encode errors here mean the client went away mid-response; the status
	// header is already out, so there is nothing useful left to report.
	_ = json.NewEncoder(w).Encode(v)
}
