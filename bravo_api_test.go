package bravo_test

import (
	"sync"
	"testing"

	bravo "github.com/bravolock/bravo"
)

// These tests exercise the public facade: everything a downstream user
// touches must work through the exported surface alone.

func TestPublicAPIBasicRoundTrip(t *testing.T) {
	substrates := map[string]func() bravo.RWLock{
		"ba":      bravo.NewBA,
		"pf-t":    bravo.NewPFT,
		"pthread": bravo.NewPthread,
		"go-rw":   bravo.NewGoRW,
		"mutex":   bravo.NewMutexRW,
		"per-cpu": func() bravo.RWLock { return bravo.NewPerCPU(bravo.HostTopology()) },
		"cohort":  func() bravo.RWLock { return bravo.NewCohortRW(bravo.TopologyX52) },
	}
	for name, mk := range substrates {
		t.Run(name, func(t *testing.T) {
			l := bravo.New(mk(), bravo.WithTable(bravo.NewTable(64)))
			tok := l.RLock()
			l.RUnlock(tok)
			l.Lock()
			l.Unlock()
			tok = l.RLock()
			l.RUnlock(tok)
		})
	}
}

func TestPublicAPIOptionsCompose(t *testing.T) {
	st := &bravo.Stats{}
	l := bravo.New(bravo.NewBA(),
		bravo.WithTable(bravo.NewTable2D(8, 32)),
		bravo.WithPolicy(bravo.NewInhibitPolicy(bravo.DefaultInhibitN)),
		bravo.WithStats(st),
		bravo.WithSecondProbe(),
		bravo.WithRevocationMutex(),
	)
	for i := 0; i < 100; i++ {
		tok := l.RLock()
		l.RUnlock(tok)
	}
	l.Lock()
	l.Unlock()
	if st.Snapshot().Reads() != 100 {
		t.Fatalf("stats lost reads: %s", st.Snapshot())
	}
}

func TestPublicAPIConcurrentSmoke(t *testing.T) {
	l := bravo.New(bravo.NewBA())
	var mu sync.Mutex
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if i%16 == 0 {
					l.Lock()
					mu.Lock()
					counter++
					mu.Unlock()
					l.Unlock()
				} else {
					tok := l.RLock()
					_ = counter
					l.RUnlock(tok)
				}
			}
		}()
	}
	wg.Wait()
	// Each worker writes on i ∈ {0, 16, ..., 496}: 32 writes each.
	if counter != 4*32 {
		t.Fatalf("counter = %d, want 128", counter)
	}
}

func TestSharedTableIsProcessWide(t *testing.T) {
	a := bravo.New(bravo.NewBA())
	b := bravo.New(bravo.NewPFT())
	if a.TableInUse() != b.TableInUse() || a.TableInUse() != bravo.SharedTable() {
		t.Fatal("locks do not share the default table")
	}
	if bravo.SharedTable().Size() != bravo.DefaultTableSize {
		t.Fatalf("shared table size %d", bravo.SharedTable().Size())
	}
}

func TestTryLocksThroughFacade(t *testing.T) {
	l := bravo.New(bravo.NewBA(), bravo.WithTable(bravo.NewTable(64)))
	var tl bravo.TryRWLock = l
	tok, ok := tl.TryRLock()
	if !ok {
		t.Fatal("TryRLock failed on free lock")
	}
	l.RUnlock(tok)
	if !tl.TryLock() {
		t.Fatal("TryLock failed on free lock")
	}
	if _, ok := tl.TryRLock(); ok {
		t.Fatal("TryRLock succeeded under writer")
	}
	l.Unlock()
}

func TestShardedKVThroughFacade(t *testing.T) {
	if _, err := bravo.NewShardedKV(3, bravo.NewBA); err == nil {
		t.Fatal("non-power-of-two shard count accepted")
	}
	st := &bravo.Stats{}
	kv, err := bravo.NewShardedKV(4, func() bravo.RWLock {
		return bravo.New(bravo.NewBA(), bravo.WithStats(st))
	})
	if err != nil {
		t.Fatal(err)
	}
	if kv.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", kv.NumShards())
	}
	for k := uint64(0); k < 256; k++ {
		kv.Put(k, []byte{byte(k)})
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(0); i < 2000; i++ {
				k := (seed*i + i) % 256
				if i%32 == 0 {
					kv.Put(k, []byte{byte(i)})
				} else if v, ok := kv.Get(k); !ok || len(v) != 1 {
					t.Errorf("Get(%d) = %v, %v", k, v, ok)
					return
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	vals := kv.MultiGet([]uint64{1, 2, 1 << 40})
	if vals[0] == nil || vals[1] == nil || vals[2] != nil {
		t.Fatalf("MultiGet = %v", vals)
	}
	if kv.Delete(1 << 40) {
		t.Fatal("Delete of absent key reported present")
	}
	var stats bravo.ShardedKVStats = kv.Stats()
	var total bravo.ShardKVStats = stats.Total()
	if total.Keys != kv.Len() || total.Gets == 0 {
		t.Fatalf("stats inconsistent: %+v vs Len %d", total, kv.Len())
	}
	if got := st.Snapshot().Reads(); got == 0 {
		t.Fatal("BRAVO per-shard locks recorded no reads")
	}
	if n := len(kv.Snapshot()); n != kv.Len() {
		t.Fatalf("Snapshot has %d keys, Len is %d", n, kv.Len())
	}
}

func TestReaderHandleThroughFacade(t *testing.T) {
	l := bravo.New(bravo.NewBA(), bravo.WithTable(bravo.NewTable(64)))
	var hl bravo.HandleRWLock = l
	h := bravo.NewReader()
	tok := hl.RLockH(h) // slow; enables bias under the default policy
	hl.RUnlockH(h, tok)
	for i := 0; i < 10; i++ {
		tok := hl.RLockH(h)
		hl.RUnlockH(h, tok)
	}
	l.Lock()
	l.Unlock()
	if bravo.NewReaderWithID(7).ID() != 7 {
		t.Fatal("explicit handle identity not pinned")
	}
}

func TestShardedKVHandleReadsThroughFacade(t *testing.T) {
	kv, err := bravo.NewShardedKV(4, func() bravo.RWLock {
		return bravo.New(bravo.NewBA())
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 64; k++ {
		kv.Put(k, []byte{byte(k)})
	}
	h := bravo.NewReader()
	if v, ok := kv.GetH(h, 3); !ok || v[0] != 3 {
		t.Fatalf("GetH = %v, %v", v, ok)
	}
	buf := make([]byte, 0, 8)
	if buf, ok := kv.GetIntoH(h, 4, buf); !ok || buf[0] != 4 {
		t.Fatalf("GetIntoH = %v, %v", buf, ok)
	}
	vals := kv.MultiGetH(h, []uint64{1, 2, 1 << 40})
	if vals[0] == nil || vals[1] == nil || vals[2] != nil {
		t.Fatalf("MultiGetH = %v", vals)
	}
}

func TestTopologyHelpers(t *testing.T) {
	if bravo.TopologyX52.NumCPUs() != 72 || bravo.TopologyX54.NumCPUs() != 144 {
		t.Fatal("reference topologies wrong")
	}
	if bravo.HostTopology().NumCPUs() < 1 {
		t.Fatal("host topology empty")
	}
}
