package rwl

import (
	"github.com/bravolock/bravo/internal/bias"
)

// Reader is a per-goroutine (or per-request) reader handle: a pinned
// identity plus a per-lock cache of the last fast-path table slot. Passing
// one through a HandleRWLock read path removes the identity derivation and
// the hash from the steady state — the acquisition is a single CAS at the
// cached index — and arms unbalanced-unlock detection via the handle's
// held-slot record.
//
// A Reader must not be used from two goroutines at once.
type Reader = bias.Reader

// NewReader returns a reader handle with a fresh pinned identity.
func NewReader() *Reader { return bias.NewReader() }

// NewReaderWithID returns a handle with an explicit identity, for callers
// that need reproducible (lock, reader) → slot mappings.
func NewReaderWithID(id uint64) *Reader { return bias.NewReaderWithID(id) }

// HandleRWLock is implemented by locks whose read path accepts a reader
// handle. Acquisitions made with RLockH must be released with RUnlockH by
// the same handle; the plain RLock/RUnlock pair remains available for
// callers without one.
type HandleRWLock interface {
	RWLock
	// RLockH acquires read permission for the handle's pinned identity,
	// using its cached slot when possible. The returned token must be
	// passed to RUnlockH along with the same handle.
	RLockH(h *Reader) Token
	// RUnlockH releases a read acquisition made by the RLockH call that
	// returned t. It panics on an unbalanced release (double unlock or
	// unlock without lock) detectable from the handle's held-slot record.
	RUnlockH(h *Reader, t Token)
}
