package bravo

import (
	"github.com/bravolock/bravo/internal/bias"
	"github.com/bravolock/bravo/internal/core"
	"github.com/bravolock/bravo/internal/kvs"
	"github.com/bravolock/bravo/internal/locks/adaptive"
	"github.com/bravolock/bravo/internal/locks/cohort"
	"github.com/bravolock/bravo/internal/locks/fairrw"
	"github.com/bravolock/bravo/internal/locks/mutexrw"
	"github.com/bravolock/bravo/internal/locks/percpu"
	"github.com/bravolock/bravo/internal/locks/pfq"
	"github.com/bravolock/bravo/internal/locks/pft"
	"github.com/bravolock/bravo/internal/locks/ptl"
	"github.com/bravolock/bravo/internal/locks/stdrw"
	"github.com/bravolock/bravo/internal/repl"
	"github.com/bravolock/bravo/internal/rwl"
	"github.com/bravolock/bravo/internal/topo"
)

// Token carries per-acquisition reader state from RLock to RUnlock.
type Token = rwl.Token

// RWLock is the reader-writer lock interface BRAVO wraps and implements.
type RWLock = rwl.RWLock

// TryRWLock extends RWLock with non-blocking acquisition attempts.
type TryRWLock = rwl.TryRWLock

// HandleRWLock extends RWLock with handle-accepting read paths
// (RLockH/RUnlockH). bravo.Lock implements it.
type HandleRWLock = rwl.HandleRWLock

// Reader is a per-goroutine (or per-request) reader handle: a pinned
// identity plus a per-lock cache of the last fast-path slot, making the
// steady-state read one CAS with no hashing, and arming unbalanced-unlock
// detection. A Reader must not be shared between concurrent goroutines.
type Reader = rwl.Reader

// NewReader returns a reader handle with a fresh pinned identity.
func NewReader() *Reader { return rwl.NewReader() }

// NewReaderWithID returns a reader handle with an explicit identity, for
// reproducible (lock, reader) → slot mappings.
func NewReaderWithID(id uint64) *Reader { return rwl.NewReaderWithID(id) }

// Lock is a BRAVO-transformed reader-writer lock (BRAVO-A, paper §3).
type Lock = core.Lock

// Table is a visible readers table; all locks in a process share one by
// default (32KB for the paper's 4096 slots).
type Table = core.Table

// Option configures a Lock at construction.
type Option = core.Option

// Policy decides when slow-path readers may (re-)enable reader bias.
type Policy = core.Policy

// Stats counts BRAVO path events when attached with WithStats.
type Stats = core.Stats

// Snapshot is an immutable copy of Stats.
type Snapshot = core.Snapshot

// DefaultTableSize is the paper's visible-readers-table size (4096 slots).
const DefaultTableSize = core.DefaultTableSize

// DefaultInhibitN is the paper's revocation slow-down guard multiplier (9),
// bounding writer slow-down to about 1/(N+1) ≈ 10%.
const DefaultInhibitN = core.DefaultInhibitN

// New wraps an existing reader-writer lock with the BRAVO transformation.
// The result preserves the underlying lock's admission policy and adds the
// biased reader fast path.
func New(under RWLock, opts ...Option) *Lock { return core.New(under, opts...) }

// NewTable allocates a private flat visible readers table (size must be a
// power of two). Most programs should use the shared default instead.
func NewTable(size int) *Table { return core.NewTable(size) }

// NewTable2D allocates a BRAVO-2D sectored table: rows selected by thread,
// columns by lock, with column-only revocation scans (paper §7).
func NewTable2D(rows, rowLen int) *Table { return core.NewTable2D(rows, rowLen) }

// SharedTable returns the process-wide default table.
func SharedTable() *Table { return core.SharedTable() }

// Configuration options (see the paper sections noted on each).
var (
	// WithTable directs the lock at a specific table (§5.1's idealized
	// per-lock-table variant, or a 2D table).
	WithTable = core.WithTable
	// WithPolicy installs a bias-enabling policy.
	WithPolicy = core.WithPolicy
	// WithStats attaches event counters (adds probe traffic, like lockstat).
	WithStats = core.WithStats
	// WithInhibitN tunes the 1/(N+1) writer slow-down bound (§3).
	WithInhibitN = core.WithInhibitN
	// WithSecondProbe probes an alternate slot before diverting (§7).
	WithSecondProbe = core.WithSecondProbe
	// WithRandomizedIndex selects non-deterministic slot indices (§7).
	WithRandomizedIndex = core.WithRandomizedIndex
	// WithRevocationMutex lets readers progress during revocation (§7).
	WithRevocationMutex = core.WithRevocationMutex
)

// NewInhibitPolicy returns the paper's default policy with multiplier n.
func NewInhibitPolicy(n int64) Policy { return core.NewInhibitPolicy(n) }

// Substrate locks. Each is usable on its own and as a New argument.

// NewBA returns a Brandenburg–Anderson PF-Q phase-fair lock — the compact
// centralized lock the paper calls "BA" and uses as BRAVO's main substrate.
func NewBA() RWLock { return new(pfq.Lock) }

// NewPFT returns the Brandenburg–Anderson phase-fair ticket lock (PF-T).
func NewPFT() RWLock { return new(pft.Lock) }

// NewPthread returns a POSIX-style reader-preference blocking lock.
func NewPthread() RWLock { return ptl.New() }

// NewGoRW adapts sync.RWMutex to the RWLock interface.
func NewGoRW() RWLock { return new(stdrw.Lock) }

// NewMutexRW presents a plain mutex as a degenerate reader-writer lock, for
// the BRAVO-over-mutex variant (§7).
func NewMutexRW() RWLock { return new(mutexrw.Lock) }

// NewFair returns a ticket-based fair (FIFO) reader-writer lock: strict
// arrival order, no starvation in either direction, and none of BRAVO's
// read-side scalability. It is the write-heavy end of the adaptive lock's
// mode range and is registered as "fair" in the lock registry.
func NewFair() RWLock { return new(fairrw.Lock) }

// Adaptive per-lock biasing. An AdaptiveLock watches its own read/write mix
// (as reported by its owner through the BiasAdaptor) and flips among three
// modes: biased (BRAVO fast paths on), neutral (BRAVO inhibited, underlying
// lock admission), and fair (strict FIFO gate). The hysteresis band in
// AdaptiveThresholds generalizes the paper's static inhibit multiplier into
// a closed loop — see internal/bias and internal/locks/adaptive.

// BiasMode is an adaptive lock's current operating mode.
type BiasMode = bias.Mode

// Adaptive bias modes, ordered from read-optimized to write-optimized.
const (
	BiasModeBiased  = bias.ModeBiased
	BiasModeNeutral = bias.ModeNeutral
	BiasModeFair    = bias.ModeFair
)

// AdaptiveThresholds parameterizes the mode-flip hysteresis band: enter/exit
// read-ratio thresholds for the biased and fair modes, the sampling window,
// and the revocation-overload multiplier (the paper's InhibitN).
type AdaptiveThresholds = bias.Thresholds

// DefaultAdaptiveThresholds returns the tuned defaults (window 4096,
// biased ≥ 0.90 enter / < 0.80 exit, fair < 0.50 enter / ≥ 0.60 exit).
func DefaultAdaptiveThresholds() AdaptiveThresholds { return bias.DefaultThresholds() }

// BiasAdaptor is the per-lock mode controller; owners feed it cumulative
// read/write counts via Offer and read its decisions via Mode/Snapshot.
type BiasAdaptor = bias.Adaptor

// BiasAdaptorSnapshot is a coherent point-in-time view of one adaptor.
type BiasAdaptorSnapshot = bias.AdaptorSnapshot

// AdaptiveLock composes a fair FIFO gate over an inner (typically
// BRAVO-wrapped) lock, routing readers by the adaptor's current mode.
type AdaptiveLock = adaptive.Lock

// NewAdaptive wraps under with mode-adaptive routing at default thresholds.
// If under exposes a BRAVO bias engine (e.g. a bravo.New result), the
// adaptor is wired into it so biased fast paths obey the mode.
func NewAdaptive(under RWLock) *AdaptiveLock { return adaptive.New(under) }

// NewAdaptiveWithThresholds is NewAdaptive with an explicit hysteresis band.
func NewAdaptiveWithThresholds(under RWLock, th AdaptiveThresholds) *AdaptiveLock {
	return adaptive.NewWithThresholds(under, th)
}

// Topology describes a sockets × cores × SMT machine shape for the
// topology-sized locks below. BRAVO itself is topology-oblivious.
type Topology = topo.Topology

// Reference topologies: the paper's user-space (X5-2) and kernel (X5-4)
// machines, and the current host.
var (
	TopologyX52 = topo.X52
	TopologyX54 = topo.X54
)

// HostTopology returns a topology sized to the running process.
func HostTopology() Topology { return topo.Host() }

// NewPerCPU returns a brlock-style per-CPU distributed lock (large
// footprint, maximal read scalability, expensive writers).
func NewPerCPU(t Topology) RWLock { return percpu.New(t) }

// NewCohortRW returns the NUMA-aware C-RW-WP cohort reader-writer lock.
func NewCohortRW(t Topology) RWLock { return cohort.New(t) }

// Sharded key-value engine. ShardedKV stripes a hash keyspace across a
// power-of-two number of shards, each guarded by its own reader-writer lock
// from the supplied constructor — the scale-out workload the paper's
// rocksdb experiments point at (one GetLock stripe is their bottleneck;
// here the stripe count and the lock substrate are both free axes). Read
// paths accept an optional Reader handle (GetH/GetIntoH/MultiGetH): one
// pinned identity per request, cached-slot fast paths on every shard.
// Writes batch (MultiPut/MultiDelete: one write-lock acquisition per shard
// group) or coalesce asynchronously (PutAsync/Flush), and keys may carry a
// TTL (PutTTL, lazily expired on read and incrementally removed by Reap).
// Built over adaptive locks (NewAdaptive), each shard self-tunes its bias
// mode from its own traffic; SetAdaptive and SetAdaptiveThresholds steer the
// loop, and per-shard modes surface in Stats. cmd/kvserv serves this engine
// over HTTP.
type ShardedKV = kvs.Sharded

// ShardedKVStats aggregates a ShardedKV's per-shard operation counters.
type ShardedKVStats = kvs.ShardedStats

// ShardKVStats summarizes one shard (or, via Total, a whole engine).
type ShardKVStats = kvs.ShardStats

// NewShardedKV returns a sharded KV engine with the given number of shards
// (a positive power of two), each guarded by a fresh lock from mkLock —
// e.g. func() bravo.RWLock { return bravo.New(bravo.NewBA()) } for a
// BRAVO-striped engine whose shards share the process-wide readers table.
func NewShardedKV(shards int, mkLock func() RWLock) (*ShardedKV, error) {
	return kvs.NewSharded(shards, mkLock)
}

// Multi-key transactions. ShardedKV.Txn runs a caller-supplied body against
// an up-to-MaxTxnKeys key set with full atomicity and isolation: every
// participant shard's write lock (and, on durable engines, WAL) is held in
// ascending shard order for the duration — two-phase locking over a total
// lock order, so transactions cannot deadlock each other or the engine's
// own batched-write paths. Committed cross-shard transactions are logged as
// witness records carried by every participant shard, so recovery,
// replication, and failover all preserve atomicity (a torn commit is rolled
// forward from any surviving copy). CompareAndSwap and Update are the
// common single-key special cases.

// KVTx is the transaction handle passed to a ShardedKV.Txn body: staged
// reads and writes over the declared key set.
type KVTx = kvs.Tx

// MaxTxnKeys bounds the distinct keys one transaction may declare.
const MaxTxnKeys = kvs.MaxTxnKeys

// Transaction sentinel errors.
var (
	// ErrTxnNoKeys is returned by Txn when the key set is empty.
	ErrTxnNoKeys = kvs.ErrTxnNoKeys
	// ErrTxnTooManyKeys is returned by Txn when the key set exceeds
	// MaxTxnKeys distinct keys.
	ErrTxnTooManyKeys = kvs.ErrTxnTooManyKeys
)

// SyncPolicy selects when a durable engine's write-ahead log fsyncs:
// SyncAlways pays one fsync per group-commit batch, SyncNone leaves
// flushing to the OS.
type SyncPolicy = kvs.SyncPolicy

// WAL sync policies for OpenShardedKV.
const (
	SyncNone   = kvs.SyncNone
	SyncAlways = kvs.SyncAlways
)

// OpenShardedKV opens (or creates) a durable sharded KV engine in dir.
// Every write appends to a per-shard write-ahead log before it is applied;
// the batched writes (MultiPut, MultiDelete, async-queue flushes) are one
// log record and — under SyncAlways — one fsync per shard group, the same
// amortize-the-slow-path move BRAVO makes for bias revocation. Reopening
// the directory recovers the latest Checkpoint snapshot plus the log tail,
// dropping a torn final record. Callers Close the engine on shutdown and
// Checkpoint to bound log growth. The directory's shard count is pinned by
// its MANIFEST: reopen with the count it was created with.
func OpenShardedKV(dir string, shards int, mkLock func() RWLock, policy SyncPolicy) (*ShardedKV, error) {
	return kvs.OpenSharded(dir, shards, mkLock, policy)
}

// FollowerKV is a read-only replica of a durable ShardedKV primary: it
// tails the primary's per-shard, LSN-stamped write-ahead log over HTTP
// (cmd/kvserv's GET /repl/stream) into an in-memory engine serving the
// same biased read fast paths. Reads go through Engine(); AppliedLSN and
// WaitMinLSN turn the primary's commit LSNs into read-your-writes
// barriers; Close stops tailing (the replica stays readable, frozen).
type FollowerKV = repl.Follower

// FollowerKVStats summarizes a follower's per-shard replication progress.
type FollowerKVStats = repl.Stats

// OpenFollowerKV connects to a replication primary — a kvserv started
// with -data-dir, at its base URL — sizes an in-memory replica to the
// primary's shard count (each shard guarded by a fresh lock from mkLock),
// and starts tailing its WAL streams. A fresh follower bootstraps through
// the stream itself: the primary sends a full-state snapshot frame when
// the requested history was checkpointed away, then the incremental tail.
// This is the macro form of BRAVO's read bias: reads fan out to replicas
// for the price of a bounded, explicit write-visibility delay, exactly as
// biased readers fan out to table slots for the price of revocation.
func OpenFollowerKV(primaryURL string, mkLock func() RWLock) (*FollowerKV, error) {
	return repl.Open(repl.Config{Primary: primaryURL, MkLock: mkLock})
}
