package kvs

// Durability wiring: options, the data-directory layout, recovery, and
// Close. A durable engine's directory holds
//
//	MANIFEST           {"version":1,"shards":N} — pins the shard layout
//	shard-NNNN.snap    latest checkpoint of shard N (optional)
//	shard-NNNN.wal     records appended since that checkpoint
//	shard-NNNN.wal.old mid-checkpoint generation (crash artifact, replayed)
//
// Recovery invariant: shard N's state is
//
//	replay(snapshot, wal.old, wal-up-to-last-valid-record)
//
// in that order, with the wal's torn tail truncated before new appends.
// Keys are assigned to shards by hash, so the layout is only meaningful at
// the shard count that produced it — the MANIFEST records it and reopening
// with a different count is an error, not silent misrouting.

import (
	"cmp"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"

	"github.com/bravolock/bravo/internal/rwl"
)

// Option configures a Sharded engine at construction.
type Option func(*engineConfig)

type engineConfig struct {
	dir     string
	policy  SyncPolicy
	lsnBase []uint64
}

// WithDurability makes the engine durable: state lives in dir (created if
// missing, recovered if not empty — snapshot plus log tail, torn final
// record dropped), every write is logged before it is applied, and policy
// says when the log fsyncs. Pair with Close on shutdown and Checkpoint to
// bound log growth.
func WithDurability(dir string, policy SyncPolicy) Option {
	return func(c *engineConfig) {
		c.dir = dir
		c.policy = policy
	}
}

// WithLSNBase floors each shard's log sequence numbers: shard i's first
// record is stamped base[i]+1 (unless recovery already found a higher LSN
// in the directory). Failover promotion uses it so a freshly-promoted
// primary continues the per-shard LSN sequence from the point the promoted
// follower had applied — read-your-writes tokens issued before the
// failover stay comparable against the new primary's log, and the base is
// exactly the fence cut between survived and lost history. Only meaningful
// together with WithDurability; base must have one entry per shard.
func WithLSNBase(base []uint64) Option {
	return func(c *engineConfig) {
		c.lsnBase = base
	}
}

// OpenSharded opens (or creates) a durable engine in dir: NewSharded with
// WithDurability. On a non-empty directory it replays the latest snapshot
// and the log tail written since, tolerating a torn final record.
func OpenSharded(dir string, shards int, mkLock rwl.Factory, policy SyncPolicy) (*Sharded, error) {
	return NewSharded(shards, mkLock, WithDurability(dir, policy))
}

// Durable reports whether the engine writes a WAL.
func (s *Sharded) Durable() bool { return s.durable }

// Dir returns the data directory, empty for volatile engines.
func (s *Sharded) Dir() string { return s.dir }

// SyncPolicy returns the WAL sync policy; SyncNone for volatile engines.
func (s *Sharded) SyncPolicy() SyncPolicy { return s.policy }

// WALError returns the first WAL write, sync, or rotation error any shard
// has recorded, or nil. The engine keeps serving from memory after a WAL
// error; callers that need hard durability poll this (kvserv surfaces it
// in /stats).
func (s *Sharded) WALError() error {
	if !s.durable {
		return nil
	}
	for i := range s.shards {
		w := s.shards[i].wal
		// The errs counter is the lock-free gate: writers hold mu across
		// fsync, so blindly locking here would stall a stats poll (and the
		// writers behind it) on every busy shard.
		if w.errs.Load() == 0 {
			continue
		}
		w.mu.Lock()
		err := w.err
		w.mu.Unlock()
		if err != nil {
			return fmt.Errorf("kvs: shard %d wal: %w", i, err)
		}
	}
	return nil
}

// Close drains the async write queues and, on durable engines, syncs and
// closes every shard's log. The engine must not be written after Close
// (late writes are counted as WAL errors and survive only in memory).
// Close is idempotent.
func (s *Sharded) Close() error {
	s.Flush()
	if !s.durable {
		return nil
	}
	var first error
	for i := range s.shards {
		w := s.shards[i].wal
		w.mu.Lock()
		if !w.closed {
			w.closed = true
			if err := w.f.Sync(); err != nil && first == nil {
				first = err
			}
			if err := w.f.Close(); err != nil && first == nil {
				first = err
			}
		}
		if first == nil {
			first = w.err
		}
		w.mu.Unlock()
	}
	return first
}

// manifest pins the directory's shard layout.
type manifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

const manifestName = "MANIFEST"

// openDurable attaches a WAL to every shard of a freshly-built engine,
// recovering any state already in dir. Runs before the engine is shared,
// so it touches the maps without locks.
func (s *Sharded) openDurable(dir string, policy SyncPolicy, lsnBase []uint64) error {
	if lsnBase != nil && len(lsnBase) != len(s.shards) {
		return fmt.Errorf("kvs: LSN base has %d entries for %d shards", len(lsnBase), len(s.shards))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.dir, s.durable, s.policy = dir, true, policy
	if err := s.checkManifest(); err != nil {
		return err
	}
	needCkpt := make([]int, 0)
	// txns gathers multi-shard transaction witness records across every
	// shard's replay, keyed by the transaction's identity (see
	// walRecord.txnKey), so a commit torn across shard logs can be rolled
	// forward once all logs have been read.
	txns := make(map[walPart]*txnRecovery)
	for i := range s.shards {
		sh := &s.shards[i]
		// A .snap.tmp is an interrupted, unpublished checkpoint: garbage.
		_ = os.Remove(s.snapPath(i) + ".tmp")
		// last tracks the highest LSN recovered across snapshot, wal.old,
		// and wal, in replay order; the reopened log continues from it.
		// Legacy v1 records carry no LSN and are assigned sequential ones
		// continuing from last — the in-place upgrade path.
		var last uint64
		if data, err := os.ReadFile(s.snapPath(i)); err == nil {
			entries, snapLSN, err := loadSnapshot(data)
			if err != nil {
				return fmt.Errorf("kvs: shard %d snapshot: %w", i, err)
			}
			sh.recover(entries)
			last = snapLSN
		} else if !os.IsNotExist(err) {
			return err
		}
		if data, err := os.ReadFile(s.walOldPath(i)); err == nil {
			_, last = walReplay(data, last, func(rec walRecord) { s.recoverShardRecord(i, rec, txns) })
			needCkpt = append(needCkpt, i)
		} else if !os.IsNotExist(err) {
			return err
		}
		walSize := int64(0)
		if data, err := os.ReadFile(s.walPath(i)); err == nil {
			var valid int
			valid, last = walReplay(data, last, func(rec walRecord) { s.recoverShardRecord(i, rec, txns) })
			walSize = int64(valid)
		} else if !os.IsNotExist(err) {
			return err
		}
		// Drop the torn tail before appending after it: a new record
		// written beyond torn bytes would be unreachable at replay.
		if err := truncateTo(s.walPath(i), walSize); err != nil {
			return err
		}
		// The LSN floor (failover promotion): the sequence continues from
		// the base unless the directory already recovered past it.
		if lsnBase != nil && lsnBase[i] > last {
			last = lsnBase[i]
		}
		f, err := os.OpenFile(s.walPath(i), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		sh.wal = &shardWAL{f: f, policy: policy, size: walSize, lsn: last}
		sh.wal.applied.Store(last)
	}
	// Restore transaction atomicity before anything else appends: any
	// multi-shard commit witnessed by one surviving shard log but missing
	// from another participant's is re-applied and re-logged there.
	if err := s.rollForwardTxns(txns); err != nil {
		return err
	}
	// Make the freshly-created log files' directory entries durable: an
	// fsynced record is worthless if the file itself vanishes with the
	// unsynced directory on power loss.
	if err := syncDir(dir); err != nil {
		return err
	}
	// A leftover .wal.old means a checkpoint died mid-flight; re-running it
	// now collapses the three-file state back to snapshot + empty log.
	for _, i := range needCkpt {
		if err := s.checkpointShard(i); err != nil {
			return fmt.Errorf("kvs: recovering checkpoint of shard %d: %w", i, err)
		}
	}
	return nil
}

// checkManifest validates the layout pin, writing it on first use.
func (s *Sharded) checkManifest() error {
	path := filepath.Join(s.dir, manifestName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if s.hasShardFiles() {
			return fmt.Errorf("kvs: %s has shard files but no %s", s.dir, manifestName)
		}
		return writeManifest(s.dir, len(s.shards))
	}
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("kvs: parsing %s: %w", path, err)
	}
	if m.Version != 1 {
		return fmt.Errorf("kvs: %s version %d not understood", path, m.Version)
	}
	if m.Shards != len(s.shards) {
		return fmt.Errorf("kvs: %s was written with %d shards, reopened with %d — keys are sharded by hash, so the layout is not portable across shard counts", s.dir, m.Shards, len(s.shards))
	}
	return nil
}

// writeManifest publishes the layout pin atomically (tmp + rename + dir
// sync).
func writeManifest(dir string, shards int) error {
	path := filepath.Join(dir, manifestName)
	buf, _ := json.Marshal(manifest{Version: 1, Shards: shards})
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// hasShardFiles reports whether dir already holds shard state.
func (s *Sharded) hasShardFiles() bool {
	for _, pat := range []string{"shard-*.wal", "shard-*.snap"} {
		if m, _ := filepath.Glob(filepath.Join(s.dir, pat)); len(m) > 0 {
			return true
		}
	}
	return false
}

// txnRecovery accumulates one multi-shard transaction's witness copies as
// recovery replays each shard's log: which participants' copies were found,
// plus the full entry list (identical in every copy) in case a missing
// participant must be rolled forward. Entry values alias the replay buffer,
// which stays live for the duration of openDurable.
type txnRecovery struct {
	parts   []walPart
	entries []walEntry
	seen    []bool
}

// recoverShardRecord applies one replayed record to shard. Ordinary records
// apply wholesale; transaction witness records apply only the entries owned
// by this shard and register the copy in txns for the post-replay
// atomicity check.
func (s *Sharded) recoverShardRecord(shard int, rec walRecord, txns map[walPart]*txnRecovery) {
	sh := &s.shards[shard]
	if rec.version != walVersionTxn {
		sh.recover(rec.entries)
		return
	}
	for _, e := range rec.entries {
		if s.ShardOf(e.key) == shard {
			sh.recoverEntry(e)
		}
	}
	t := txns[rec.txnKey()]
	if t == nil {
		t = &txnRecovery{parts: rec.parts, entries: rec.entries, seen: make([]bool, len(rec.parts))}
		txns[rec.txnKey()] = t
	}
	for i, p := range t.parts {
		if int(p.shard) == shard {
			t.seen[i] = true
		}
	}
}

// rollForwardTxns restores cross-shard commit atomicity after replay: for
// every transaction some participant's log witnessed but another's did not,
// the missing participant's own entries are applied to its in-memory state
// and the witness record is re-appended to its log at whatever LSN the
// shard actually reached (not the LSN the original commit intended — a
// lost un-synced tail may have taken unrelated records with it). Re-
// appending the witness itself, rather than a plain record, is what makes
// the repair converge: the next recovery sees the copy and marks the
// participant satisfied, so a roll-forward can never replay over writes
// that landed after the repair. A participant whose recovered LSN already
// passed its copy's intended LSN lost nothing — its checkpoint compacted
// the record away — and is skipped. When one shard misses several
// transactions, they are replayed in the order that shard originally
// committed them, which the witness list's per-participant LSNs record.
func (s *Sharded) rollForwardTxns(txns map[walPart]*txnRecovery) error {
	type missed struct {
		lsn uint64
		t   *txnRecovery
	}
	var byShard map[int][]missed
	for _, t := range txns {
		for i, p := range t.parts {
			if t.seen[i] {
				continue
			}
			j := int(p.shard)
			if j >= len(s.shards) {
				return fmt.Errorf("kvs: transaction witness names shard %d of %d", j, len(s.shards))
			}
			if s.shards[j].wal.lsn >= p.lsn {
				continue
			}
			if byShard == nil {
				byShard = make(map[int][]missed)
			}
			byShard[j] = append(byShard[j], missed{p.lsn, t})
		}
	}
	for j, list := range byShard {
		slices.SortFunc(list, func(a, b missed) int { return cmp.Compare(a.lsn, b.lsn) })
		sh := &s.shards[j]
		w := sh.wal
		for _, m := range list {
			var ents []walEntry
			for _, e := range m.t.entries {
				if s.ShardOf(e.key) == j {
					ents = append(ents, e)
				}
			}
			sh.recover(ents)
			w.beginTxn(m.t.parts, len(m.t.entries))
			for _, e := range m.t.entries {
				switch e.op {
				case walOpPut:
					w.addPut(e.key, e.val, 0)
				case walOpPutTTL:
					w.addPut(e.key, e.val, deadlineFromRemaining(e.rem))
				case walOpDelete:
					w.addDelete(e.key)
				}
			}
			w.commit(len(ents))
			if w.err != nil {
				return fmt.Errorf("kvs: rolling transaction forward on shard %d: %w", j, w.err)
			}
			w.applied.Store(w.lsn)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("kvs: syncing rolled-forward shard %d: %w", j, err)
		}
	}
	return nil
}

// recover applies decoded entries to a shard during single-threaded
// recovery, through the same putLocked/deleteLocked the live paths use —
// including seq index maintenance, so the optimistic read path is coherent
// from the first post-recovery read. No bracketing is needed here: the
// engine is not yet shared, so no optimistic reader exists to mislead.
func (sh *kvShard) recover(entries []walEntry) {
	for _, e := range entries {
		sh.recoverEntry(e)
	}
}

// recoverEntry applies one decoded entry during recovery.
func (sh *kvShard) recoverEntry(e walEntry) {
	switch e.op {
	case walOpPut:
		sh.putCounted(e.key, e.val, 0)
	case walOpPutTTL:
		sh.putCounted(e.key, e.val, deadlineFromRemaining(e.rem))
	case walOpDelete:
		sh.deleteLocked(e.key)
	}
}

// truncateTo truncates path to size when it exists and is longer.
func truncateTo(path string, size int64) error {
	st, err := os.Stat(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if st.Size() <= size {
		return nil
	}
	return os.Truncate(path, size)
}

func (s *Sharded) walPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%04d.wal", i))
}

func (s *Sharded) walOldPath(i int) string {
	return s.walPath(i) + ".old"
}

func (s *Sharded) snapPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%04d.snap", i))
}

// errNotDurable is returned by durable-only operations on volatile engines.
var errNotDurable = errors.New("kvs: engine is volatile (open with WithDurability)")
